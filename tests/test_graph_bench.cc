/**
 * @file
 * End-to-end checks of the graph allocation-payoff study
 * (buildGraphAllocTables): the ISSUE acceptance criteria -- at least
 * three populated predictability bins, strictly larger payoff in the
 * easy bin than in the hardest populated bin, per-bin counters that
 * reconcile with the "all" row -- plus determinism of the rendered
 * tables across replay modes, thread counts and shard counts.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_common.hh"

using namespace bwsa;
using namespace bwsa::bench;

namespace
{

constexpr std::uint64_t kBht = 256;

BenchOptions
graphOptions(unsigned threads = 1)
{
    BenchOptions options;
    options.scale = 0.3;
    options.benchmarks = {"graph:bfs:powerlaw"};
    options.threads = threads;
    return options;
}

/** The per-bin rows of one benchmark (excluding the "all" row). */
std::vector<GraphAllocBinRow>
binRowsOf(const GraphAllocTables &tables, const std::string &benchmark)
{
    std::vector<GraphAllocBinRow> rows;
    for (const GraphAllocBinRow &row : tables.bins)
        if (row.benchmark == benchmark && row.label != "all")
            rows.push_back(row);
    return rows;
}

const GraphAllocBinRow *
allRowOf(const GraphAllocTables &tables, const std::string &benchmark)
{
    for (const GraphAllocBinRow &row : tables.bins)
        if (row.benchmark == benchmark && row.label == "all")
            return &row;
    return nullptr;
}

} // namespace

TEST(GraphAllocBench, EasyBinPaysOffMoreThanHardBin)
{
    // The headline claim of the study on the default power-law BFS
    // preset: allocation recovers aliasing losses, so its payoff
    // concentrates where the miss floor is aliasing (easy bins) and
    // decays where the floor is inherent (hard bins).
    GraphAllocTables tables =
        buildGraphAllocTables(graphOptions(), kBht);
    std::vector<GraphAllocBinRow> rows =
        binRowsOf(tables, "graph:bfs:powerlaw");
    ASSERT_FALSE(rows.empty());

    std::vector<const GraphAllocBinRow *> populated;
    for (const GraphAllocBinRow &row : rows)
        if (row.stats.executed > 0)
            populated.push_back(&row);

    // Acceptance: >= 3 predictability bins populated.
    ASSERT_GE(populated.size(), 3u);

    // Acceptance: strictly larger payoff in the easiest populated bin
    // than in the hardest populated bin.
    const GraphAllocBinRow *easy = populated.front();
    const GraphAllocBinRow *hard = populated.back();
    EXPECT_LT(easy->bin, hard->bin);
    EXPECT_GT(easy->stats.payoffPercent(),
              hard->stats.payoffPercent());

    // Allocation eliminates nearly all destructive aliasing in every
    // populated bin -- the payoff difference is the miss *floor*, not
    // a failure to assign entries.
    for (const GraphAllocBinRow *row : populated)
        if (row->stats.base_victims > 0)
            EXPECT_GT(row->stats.victimsEliminatedPercent(), 50.0)
                << row->label;
}

TEST(GraphAllocBench, BinsReconcileWithTheAllRow)
{
    GraphAllocTables tables =
        buildGraphAllocTables(graphOptions(), kBht);
    const GraphAllocBinRow *all =
        allRowOf(tables, "graph:bfs:powerlaw");
    ASSERT_NE(all, nullptr);

    obs::PredictabilityBinStats sum;
    for (const GraphAllocBinRow &row :
         binRowsOf(tables, "graph:bfs:powerlaw"))
        sum.merge(row.stats);
    EXPECT_EQ(sum.branches, all->stats.branches);
    EXPECT_EQ(sum.executed, all->stats.executed);
    EXPECT_EQ(sum.base_miss, all->stats.base_miss);
    EXPECT_EQ(sum.alloc_miss, all->stats.alloc_miss);
    EXPECT_EQ(sum.base_victims, all->stats.base_victims);
    EXPECT_EQ(sum.alloc_victims, all->stats.alloc_victims);

    // Full-coverage profiling: every simulated execution is binned.
    EXPECT_GT(all->stats.executed, 0u);
    EXPECT_GT(all->stats.branches, 0u);
}

TEST(GraphAllocBench, BatchedAndFanoutTablesAreIdentical)
{
    BenchOptions batched = graphOptions();
    batched.batched = true;
    BenchOptions fanout = graphOptions();
    fanout.batched = false;

    GraphAllocTables a = buildGraphAllocTables(batched, kBht);
    GraphAllocTables b = buildGraphAllocTables(fanout, kBht);
    EXPECT_EQ(a.payoff.render(), b.payoff.render());
    EXPECT_EQ(a.summary.render(), b.summary.render());
}

TEST(GraphAllocBench, TablesIdenticalAcrossThreadsAndShards)
{
    BenchOptions serial = graphOptions(1);
    serial.benchmarks = {"graph:bfs:powerlaw", "graph:bfs:grid"};
    GraphAllocTables reference =
        buildGraphAllocTables(serial, kBht);

    BenchOptions parallel = serial;
    parallel.threads = 4;
    parallel.shards = 3;
    GraphAllocTables sharded =
        buildGraphAllocTables(parallel, kBht);
    EXPECT_EQ(sharded.payoff.render(), reference.payoff.render());
    EXPECT_EQ(sharded.summary.render(), reference.summary.render());
}

TEST(GraphAllocBench, MixedSyntheticRowsWork)
{
    // --benchmarks may mix graph specs with synthetic presets; the
    // binning machinery is workload-agnostic.
    BenchOptions options = graphOptions();
    options.scale = 0.1;
    options.benchmarks = {"graph:cc:powerlaw", "compress"};
    GraphAllocTables tables = buildGraphAllocTables(options, kBht);
    EXPECT_NE(allRowOf(tables, "graph:cc:powerlaw"), nullptr);
    EXPECT_NE(allRowOf(tables, "compress"), nullptr);
    const std::string rendered = tables.payoff.render();
    EXPECT_NE(rendered.find("compress"), std::string::npos);
}
