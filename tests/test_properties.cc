/**
 * @file
 * Cross-cutting property tests: invariants that must hold for every
 * predictor family, every working-set definition, and the allocator
 * over randomized inputs (parameterized sweeps).
 */

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/allocation.hh"
#include "core/working_set.hh"
#include "predict/factory.hh"
#include "profile/interleave.hh"
#include "sim/bpred_sim.hh"
#include "trace/trace.hh"
#include "util/random.hh"

using namespace bwsa;

namespace
{

/** Random but realistic trace: phased pc pools, biased outcomes. */
MemoryTrace
randomTrace(std::uint64_t seed, std::size_t records)
{
    Pcg32 rng(seed);
    MemoryTrace trace;
    std::uint64_t ts = 0;
    std::uint64_t pool_base = 0x400000;
    for (std::size_t i = 0; i < records; ++i) {
        if (i % 4096 == 0 && rng.nextBool(0.3))
            pool_base += 0x2000; // drift to a new region
        BranchPc pc = pool_base + 8ull * rng.nextBounded(64);
        ts += 1 + rng.nextBounded(8);
        trace.onBranch({pc, ts, rng.nextBool(0.7)});
    }
    return trace;
}

/** Random conflict graph with execution counts. */
ConflictGraph
randomGraph(std::uint64_t seed, std::size_t nodes, double density)
{
    Pcg32 rng(seed);
    ConflictGraph g;
    for (std::size_t i = 0; i < nodes; ++i) {
        NodeId id = g.addOrGetNode(0x1000 + 8 * i);
        std::uint32_t execs = 1 + rng.nextBounded(1000);
        for (std::uint32_t e = 0; e < execs; ++e)
            g.recordExecution(id, rng.nextBool(0.6));
    }
    for (NodeId a = 0; a < nodes; ++a)
        for (NodeId b = a + 1; b < nodes; ++b)
            if (rng.nextBool(density))
                g.addInterleave(a, b, 100 + rng.nextBounded(5000));
    return g;
}

} // namespace

// --------------------------------------------------- predictor invariants

class PredictorInvariants
    : public ::testing::TestWithParam<PredictorKind>
{
};

TEST_P(PredictorInvariants, DeterministicAcrossRuns)
{
    MemoryTrace trace = randomTrace(11, 20000);
    PredictorSpec spec;
    spec.kind = GetParam();
    spec.bht_entries = 256;

    PredictorPtr a = makePredictor(spec);
    PredictorPtr b = makePredictor(spec);
    PredictionStats ra = simulatePredictor(trace, *a);
    PredictionStats rb = simulatePredictor(trace, *b);
    EXPECT_EQ(ra.mispredicts.events(), rb.mispredicts.events());
}

TEST_P(PredictorInvariants, ResetEqualsFresh)
{
    MemoryTrace trace = randomTrace(13, 10000);
    PredictorSpec spec;
    spec.kind = GetParam();
    spec.bht_entries = 256;

    PredictorPtr reused = makePredictor(spec);
    simulatePredictor(trace, *reused); // train
    reused->reset();
    PredictionStats after_reset = simulatePredictor(trace, *reused);

    PredictorPtr fresh = makePredictor(spec);
    PredictionStats fresh_stats = simulatePredictor(trace, *fresh);
    EXPECT_EQ(after_reset.mispredicts.events(),
              fresh_stats.mispredicts.events())
        << predictorKindName(GetParam());
}

TEST_P(PredictorInvariants, BeatsCoinFlipOnBiasedStream)
{
    // Every dynamic predictor must exploit a 70% taken bias.
    MemoryTrace trace = randomTrace(17, 30000);
    PredictorSpec spec;
    spec.kind = GetParam();
    spec.bht_entries = 1024;
    PredictorPtr p = makePredictor(spec);
    PredictionStats stats = simulatePredictor(trace, *p);
    EXPECT_LT(stats.mispredictPercent(), 48.0)
        << predictorKindName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, PredictorInvariants,
    ::testing::Values(PredictorKind::Bimodal, PredictorKind::GAg,
                      PredictorKind::Gshare, PredictorKind::PAgModulo,
                      PredictorKind::PAgIdeal, PredictorKind::PAs,
                      PredictorKind::Tournament, PredictorKind::Agree),
    [](const ::testing::TestParamInfo<PredictorKind> &info) {
        std::string name = predictorKindName(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

// ----------------------------------------------------- tracker invariants

class TrackerSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TrackerSeeds, IncrementsEqualEdgeMass)
{
    // Every pairwise increment lands on exactly one edge counter, so
    // the sum of all edge counts equals the tracker's increment count.
    MemoryTrace trace = randomTrace(GetParam(), 30000);
    ConflictGraph g;
    InterleaveTracker tracker(g);
    trace.replay(tracker);

    std::uint64_t edge_mass = 0;
    for (const auto &[key, count] : g.edges())
        edge_mass += count;
    EXPECT_EQ(edge_mass, tracker.pairIncrements());
}

TEST_P(TrackerSeeds, ExecutionCountsMatchTrace)
{
    MemoryTrace trace = randomTrace(GetParam() + 100, 20000);
    ConflictGraph g = profileTrace(trace);
    EXPECT_EQ(g.totalExecutions(), trace.size());

    std::uint64_t node_sum = 0;
    for (const ConflictNode &node : g.nodes())
        node_sum += node.executed;
    EXPECT_EQ(node_sum, trace.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrackerSeeds,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

// ------------------------------------------------ working-set invariants

class WorkingSetSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(WorkingSetSeeds, EveryDefinitionCoversEveryNode)
{
    ConflictGraph g = randomGraph(GetParam(), 60, 0.15);
    for (WorkingSetDefinition def :
         {WorkingSetDefinition::MaximalClique,
          WorkingSetDefinition::SeededClique,
          WorkingSetDefinition::GreedyPartition,
          WorkingSetDefinition::ConnectedComponent}) {
        WorkingSetResult result = findWorkingSets(g, def);
        std::set<NodeId> covered;
        for (const WorkingSet &set : result.sets) {
            EXPECT_FALSE(set.empty());
            EXPECT_TRUE(std::is_sorted(set.begin(), set.end()));
            covered.insert(set.begin(), set.end());
        }
        EXPECT_EQ(covered.size(), g.nodeCount())
            << workingSetDefinitionName(def);
    }
}

TEST_P(WorkingSetSeeds, CliqueDefinitionsYieldCliques)
{
    ConflictGraph g = randomGraph(GetParam() + 50, 40, 0.25);
    for (WorkingSetDefinition def :
         {WorkingSetDefinition::MaximalClique,
          WorkingSetDefinition::SeededClique,
          WorkingSetDefinition::GreedyPartition}) {
        WorkingSetResult result = findWorkingSets(g, def);
        for (const WorkingSet &set : result.sets)
            for (std::size_t i = 0; i < set.size(); ++i)
                for (std::size_t j = i + 1; j < set.size(); ++j)
                    ASSERT_GT(g.interleaveCount(set[i], set[j]), 0u)
                        << workingSetDefinitionName(def);
    }
}

TEST_P(WorkingSetSeeds, PartitionNeverExceedsComponentSize)
{
    ConflictGraph g = randomGraph(GetParam() + 200, 50, 0.1);
    WorkingSetResult partition =
        findWorkingSets(g, WorkingSetDefinition::GreedyPartition);
    WorkingSetResult components =
        findWorkingSets(g, WorkingSetDefinition::ConnectedComponent);
    WorkingSetStats sp = computeWorkingSetStats(g, partition);
    WorkingSetStats sc = computeWorkingSetStats(g, components);
    EXPECT_LE(sp.max_size, sc.max_size);
    EXPECT_GE(partition.sets.size(), components.sets.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkingSetSeeds,
                         ::testing::Values(1u, 7u, 21u, 42u));

// -------------------------------------------------- allocator invariants

class AllocatorSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(AllocatorSeeds, ResidualWeaklyImprovesWithTableSize)
{
    ConflictGraph g = randomGraph(GetParam(), 80, 0.2);
    AllocationConfig config;
    std::uint64_t previous = ~std::uint64_t(0);
    for (std::uint64_t size : {4ull, 8ull, 16ull, 32ull, 128ull}) {
        AllocationResult result = allocateBranches(g, size, config);
        // Greedy coloring is not strictly monotone, but a table 2x
        // larger must not be more than marginally worse.
        EXPECT_LE(result.residual_conflict,
                  previous + previous / 4 + 100)
            << "size " << size;
        previous = result.residual_conflict;
    }
    // With one entry per node the coloring must be perfect.
    AllocationResult roomy = allocateBranches(g, 80, config);
    EXPECT_EQ(roomy.residual_conflict, 0u);
}

TEST_P(AllocatorSeeds, ProperColoringBelowThresholdEdges)
{
    // Any two branches with a thresholded conflict that end up in the
    // same entry must have been counted in residual_conflict; verify
    // by recomputing the residual from the assignment.
    ConflictGraph g = randomGraph(GetParam() + 10, 50, 0.2);
    AllocationConfig config;
    AllocationResult result = allocateBranches(g, 12, config);

    std::uint64_t recomputed = 0;
    for (const auto &[key, count] : g.edges()) {
        if (count < config.edge_threshold)
            continue;
        auto [a, b] = ConflictGraph::unpackEdge(key);
        if (result.assignment.at(g.node(a).pc) ==
            result.assignment.at(g.node(b).pc))
            recomputed += count;
    }
    EXPECT_EQ(recomputed, result.residual_conflict);
}

TEST_P(AllocatorSeeds, ClassificationNeverIncreasesRequiredSize)
{
    ConflictGraph g = randomGraph(GetParam() + 77, 60, 0.25);
    AllocationConfig plain;
    AllocationConfig classified;
    classified.use_classification = true;

    RequiredSizeResult rp = requiredTableSize(g, plain, 64, 256);
    RequiredSizeResult rc = requiredTableSize(g, classified, 64, 256);
    ASSERT_TRUE(rp.achieved);
    ASSERT_TRUE(rc.achieved);
    // Classification removes constraints (plus 2 reserved entries).
    EXPECT_LE(rc.required_entries, rp.required_entries + 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorSeeds,
                         ::testing::Values(3u, 9u, 27u, 81u));

// --------------------------------------------------------- sim invariants

TEST(SimProperty, FanoutPreservesIndependence)
{
    // Predictors sharing one replay must produce the same counts as
    // predictors run on separate replays, for any mix of kinds.
    MemoryTrace trace = randomTrace(99, 15000);

    std::vector<PredictorKind> kinds{
        PredictorKind::Bimodal, PredictorKind::Gshare,
        PredictorKind::PAgModulo, PredictorKind::Agree};

    std::vector<PredictorPtr> together, separate;
    for (PredictorKind kind : kinds) {
        PredictorSpec spec;
        spec.kind = kind;
        together.push_back(makePredictor(spec));
        separate.push_back(makePredictor(spec));
    }
    std::vector<Predictor *> raw;
    for (const PredictorPtr &p : together)
        raw.push_back(p.get());
    std::vector<PredictionStats> shared =
        comparePredictors(trace, raw);

    for (std::size_t i = 0; i < kinds.size(); ++i) {
        PredictionStats alone =
            simulatePredictor(trace, *separate[i]);
        EXPECT_EQ(shared[i].mispredicts.events(),
                  alone.mispredicts.events())
            << predictorKindName(kinds[i]);
    }
}
