/**
 * @file
 * Tests for the batched replay engine (sim/batched_replay.hh):
 *
 *  - every predictor family the factory can build produces
 *    byte-identical statistics (aggregate and per-branch) whether
 *    replayed through BatchedReplayer or through comparePredictors(),
 *    the reference implementation;
 *  - the interference probe riding a batched PAg lane classifies
 *    exactly like PAgPredictor's own probe, down to per-branch
 *    victim/aggressor attribution;
 *  - composite / wide-history specs run through the generic fallback
 *    lane and still match the reference;
 *  - replay() maintains the sim.runs / sim.predictor_runs counter
 *    contract: one trace replay, laneCount() predictor replays.
 */

#include <gtest/gtest.h>

#include "obs/metrics.hh"
#include "predict/factory.hh"
#include "predict/twolevel.hh"
#include "sim/batched_replay.hh"
#include "sim/bpred_sim.hh"
#include "trace/trace.hh"
#include "util/random.hh"

using namespace bwsa;

namespace
{

/** Random trace over @p distinct branch sites. */
MemoryTrace
makeTrace(std::size_t n, std::uint64_t seed,
          std::uint32_t distinct = 300)
{
    Pcg32 rng(seed);
    MemoryTrace trace;
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t pc = 0x400000 + 8ull * rng.nextBounded(distinct);
        // Per-site behavior mix: some strongly biased, some
        // pattern-driven, some noisy -- enough to exercise histories.
        bool taken;
        switch ((pc >> 3) % 4) {
          case 0:
            taken = true;
            break;
          case 1:
            taken = (i % 3) != 0;
            break;
          case 2:
            taken = rng.nextBool(0.5);
            break;
          default:
            taken = rng.nextBool(0.85);
            break;
        }
        trace.onBranch({pc, 5ull * (i + 1), taken});
    }
    return trace;
}

/** A BHT assignment covering some of makeTrace's sites. */
std::unordered_map<BranchPc, std::uint32_t>
makeAssignment(std::uint32_t entries)
{
    std::unordered_map<BranchPc, std::uint32_t> assignment;
    for (std::uint32_t i = 0; i < 200; ++i)
        assignment.emplace(0x400000 + 8ull * i, i % entries);
    return assignment;
}

/** Static directions for a StaticFilteredPAg spec. */
std::unordered_map<BranchPc, bool>
makeDirections()
{
    std::unordered_map<BranchPc, bool> directions;
    for (std::uint32_t i = 0; i < 100; i += 2)
        directions.emplace(0x400000 + 8ull * i, (i % 4) == 0);
    return directions;
}

PredictorSpec
specOf(PredictorKind kind)
{
    PredictorSpec spec;
    spec.kind = kind;
    return spec;
}

/** The whole factory zoo, flat lanes and generic fallbacks alike. */
std::vector<PredictorSpec>
zooSpecs()
{
    std::vector<PredictorSpec> specs;
    specs.push_back(specOf(PredictorKind::AlwaysTaken));
    specs.push_back(specOf(PredictorKind::AlwaysNotTaken));
    specs.push_back(specOf(PredictorKind::Bimodal));
    specs.push_back(parsePredictorSpec("gag:hist=10"));
    specs.push_back(parsePredictorSpec("gshare:hist=11,ctr=3"));
    specs.push_back(parsePredictorSpec("agree:hist=9"));
    specs.push_back(paperBaselineSpec());
    specs.push_back(parsePredictorSpec("pag:bht=64,hist=8,pht=128"));
    specs.push_back(allocatedSpec(makeAssignment(64), 64));
    specs.push_back(interferenceFreeSpec());
    specs.push_back(parsePredictorSpec("pas:bht=128,hist=6,sets=4"));
    // Generic fallback lanes: composite kinds and >16-bit history.
    specs.push_back(specOf(PredictorKind::Tournament));
    specs.push_back(parsePredictorSpec("gshare:hist=18"));
    specs.push_back(parsePredictorSpec("pag:bht=32,hist=20,pht=64"));
    PredictorSpec filtered = specOf(PredictorKind::StaticFilteredPAg);
    filtered.assignment = makeAssignment(128);
    filtered.bht_entries = 128;
    filtered.static_directions = makeDirections();
    specs.push_back(filtered);
    return specs;
}

/** comparePredictors() over fresh makePredictor instances. */
std::vector<PredictionStats>
referenceReplay(const TraceSource &source,
                const std::vector<PredictorSpec> &specs,
                bool per_branch = false)
{
    std::vector<PredictorPtr> owned;
    std::vector<Predictor *> raw;
    for (const PredictorSpec &spec : specs) {
        owned.push_back(makePredictor(spec));
        raw.push_back(owned.back().get());
    }
    return comparePredictors(source, raw, "", per_branch);
}

void
expectSameStats(const PredictionStats &batched,
                const PredictionStats &reference)
{
    EXPECT_EQ(batched.predictor_name, reference.predictor_name);
    EXPECT_EQ(batched.mispredicts.events(),
              reference.mispredicts.events())
        << batched.predictor_name;
    EXPECT_EQ(batched.mispredicts.total(),
              reference.mispredicts.total())
        << batched.predictor_name;
    ASSERT_EQ(batched.per_branch.size(), reference.per_branch.size())
        << batched.predictor_name;
    for (const auto &[pc, ratio] : reference.per_branch) {
        auto it = batched.per_branch.find(pc);
        ASSERT_NE(it, batched.per_branch.end())
            << batched.predictor_name << " pc " << pc;
        EXPECT_EQ(it->second.events(), ratio.events())
            << batched.predictor_name << " pc " << pc;
        EXPECT_EQ(it->second.total(), ratio.total())
            << batched.predictor_name << " pc " << pc;
    }
}

} // namespace

TEST(BatchedReplay, ZooMatchesComparePredictors)
{
    MemoryTrace trace = makeTrace(20000, 11);
    std::vector<PredictorSpec> specs = zooSpecs();

    std::vector<PredictionStats> reference =
        referenceReplay(trace, specs);
    std::vector<PredictionStats> batched = replayBatched(trace, specs);

    ASSERT_EQ(batched.size(), reference.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        expectSameStats(batched[i], reference[i]);
}

TEST(BatchedReplay, PerBranchMapsMatchReference)
{
    MemoryTrace trace = makeTrace(12000, 23);
    std::vector<PredictorSpec> specs = zooSpecs();

    std::vector<PredictionStats> reference =
        referenceReplay(trace, specs, true);
    std::vector<PredictionStats> batched =
        replayBatched(trace, specs, "", true);

    ASSERT_EQ(batched.size(), reference.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_FALSE(batched[i].per_branch.empty())
            << batched[i].predictor_name;
        expectSameStats(batched[i], reference[i]);
    }
}

TEST(BatchedReplay, FlatAndGenericLaneClassification)
{
    BatchedReplayer replayer;
    std::size_t flat_pag = replayer.addLane(paperBaselineSpec());
    std::size_t ideal = replayer.addLane(interferenceFreeSpec());
    std::size_t tournament =
        replayer.addLane(specOf(PredictorKind::Tournament));
    // Global history lives in a 32-bit register, so wide-history
    // gshare stays flat; per-address histories are packed uint16_t
    // patterns, so a >16-bit PAg falls back to the generic lane.
    std::size_t wide_global =
        replayer.addLane(parsePredictorSpec("gshare:hist=18"));
    std::size_t wide_private =
        replayer.addLane(parsePredictorSpec("pag:bht=32,hist=20"));

    EXPECT_TRUE(replayer.laneIsFlat(flat_pag));
    EXPECT_TRUE(replayer.laneIsFlat(ideal));
    EXPECT_FALSE(replayer.laneIsFlat(tournament));
    EXPECT_TRUE(replayer.laneIsFlat(wide_global));
    EXPECT_FALSE(replayer.laneIsFlat(wide_private));
}

TEST(BatchedReplay, LaneNamesMatchFactoryNames)
{
    BatchedReplayer replayer;
    for (const PredictorSpec &spec : zooSpecs()) {
        std::size_t lane = replayer.addLane(spec);
        EXPECT_EQ(replayer.laneName(lane), makePredictor(spec)->name());
    }
}

TEST(BatchedReplay, ProbeMatchesPredictorProbe)
{
    MemoryTrace trace = makeTrace(15000, 37);

    // Reference: PAgPredictor with its own probe under PredictionSim.
    PredictorPtr built = makePredictor(paperBaselineSpec());
    auto *pag = dynamic_cast<PAgPredictor *>(built.get());
    ASSERT_NE(pag, nullptr);
    pag->enableInterferenceProbe();
    PredictionStats reference = simulatePredictor(trace, *built);
    const BhtInterferenceProbe *want = pag->interferenceProbe();
    ASSERT_NE(want, nullptr);

    // Batched: same spec, probe-enabled lane (flat PAg step loop).
    BatchedReplayer replayer;
    BatchedLaneOptions options;
    options.probe = true;
    std::size_t lane = replayer.addLane(paperBaselineSpec(), options);
    replayer.replay(trace);
    const BhtInterferenceProbe *got = replayer.probe(lane);
    ASSERT_NE(got, nullptr);

    expectSameStats(replayer.stats(lane), reference);
    EXPECT_EQ(got->counters().predictions,
              want->counters().predictions);
    EXPECT_EQ(got->counters().agree, want->counters().agree);
    EXPECT_EQ(got->counters().neutral, want->counters().neutral);
    EXPECT_EQ(got->counters().constructive,
              want->counters().constructive);
    EXPECT_EQ(got->counters().destructive,
              want->counters().destructive);
    EXPECT_EQ(got->shadowedBranches(), want->shadowedBranches());

    const auto &want_branches = want->branchAliasing();
    const auto &got_branches = got->branchAliasing();
    ASSERT_EQ(got_branches.size(), want_branches.size());
    for (const auto &[pc, aliasing] : want_branches) {
        auto it = got_branches.find(pc);
        ASSERT_NE(it, got_branches.end());
        EXPECT_EQ(it->second.victim, aliasing.victim);
        EXPECT_EQ(it->second.aggressor, aliasing.aggressor);
    }

    auto want_victims = want->topVictims(8);
    auto got_victims = got->topVictims(8);
    ASSERT_EQ(got_victims.size(), want_victims.size());
    for (std::size_t i = 0; i < want_victims.size(); ++i)
        EXPECT_EQ(got_victims[i].first, want_victims[i].first);
}

TEST(BatchedReplay, GenericLaneProbeMatchesToo)
{
    // hist=20 exceeds the flat lane's 16-bit pattern budget, so this
    // probe rides the generic fallback's real PAgPredictor.
    MemoryTrace trace = makeTrace(8000, 41);
    PredictorSpec spec = parsePredictorSpec("pag:bht=64,hist=20");

    PredictorPtr built = makePredictor(spec);
    auto *pag = dynamic_cast<PAgPredictor *>(built.get());
    ASSERT_NE(pag, nullptr);
    pag->enableInterferenceProbe();
    simulatePredictor(trace, *built);
    const BhtInterferenceProbe *want = pag->interferenceProbe();

    BatchedReplayer replayer;
    BatchedLaneOptions options;
    options.probe = true;
    std::size_t lane = replayer.addLane(spec, options);
    EXPECT_FALSE(replayer.laneIsFlat(lane));
    replayer.replay(trace);
    const BhtInterferenceProbe *got = replayer.probe(lane);
    ASSERT_NE(got, nullptr);

    EXPECT_EQ(got->counters().predictions,
              want->counters().predictions);
    EXPECT_EQ(got->counters().destructive,
              want->counters().destructive);
}

TEST(BatchedReplay, ProbeIgnoredForKindsWithoutBht)
{
    BatchedReplayer replayer;
    BatchedLaneOptions options;
    options.probe = true;
    std::size_t lane =
        replayer.addLane(parsePredictorSpec("gshare"), options);
    EXPECT_EQ(replayer.probe(lane), nullptr);
}

TEST(BatchedReplay, RunCountersFollowTheContract)
{
    MemoryTrace trace = makeTrace(1000, 53);
    auto &registry = obs::MetricsRegistry::global();
    std::uint64_t runs_before =
        registry.snapshot().counterValue("sim.runs");
    std::uint64_t predictor_runs_before =
        registry.snapshot().counterValue("sim.predictor_runs");

    std::vector<PredictorSpec> specs{paperBaselineSpec(),
                                     interferenceFreeSpec(),
                                     specOf(PredictorKind::Bimodal)};
    replayBatched(trace, specs);

    obs::MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counterValue("sim.runs"), runs_before + 1);
    EXPECT_EQ(snap.counterValue("sim.predictor_runs"),
              predictor_runs_before + specs.size());
}

TEST(BatchedReplay, EmptyTraceYieldsZeroLanes)
{
    MemoryTrace empty;
    std::vector<PredictionStats> stats =
        replayBatched(empty, {paperBaselineSpec()});
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].mispredicts.total(), 0u);
    EXPECT_EQ(stats[0].mispredicts.events(), 0u);
}

TEST(BatchedReplay, ReplayerIsReusableAcrossTraces)
{
    // Two consecutive replays accumulate; the second trace's deltas
    // flush correctly (mirrors PredictionSim being driven twice).
    MemoryTrace a = makeTrace(3000, 61);
    MemoryTrace b = makeTrace(2000, 67);

    BatchedReplayer replayer;
    std::size_t lane = replayer.addLane(paperBaselineSpec());
    replayer.replay(a);
    std::uint64_t after_a = replayer.stats(lane).mispredicts.total();
    replayer.replay(b);
    EXPECT_EQ(after_a, a.size());
    EXPECT_EQ(replayer.stats(lane).mispredicts.total(),
              a.size() + b.size());
}
