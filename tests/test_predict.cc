/**
 * @file
 * Tests for the predictor library: index policies, learning behaviour
 * of each predictor family, aliasing effects (the phenomenon branch
 * allocation removes), and the factory.
 */

#include <gtest/gtest.h>

#include "predict/bimodal.hh"
#include "predict/factory.hh"
#include "predict/index_policy.hh"
#include "predict/static_pred.hh"
#include "predict/tournament.hh"
#include "predict/twolevel.hh"
#include "util/random.hh"

using namespace bwsa;

namespace
{

/** Train-and-measure helper: returns misprediction ratio. */
double
missRate(Predictor &p,
         const std::vector<std::pair<BranchPc, bool>> &stream)
{
    std::uint64_t miss = 0;
    for (auto [pc, taken] : stream) {
        miss += (p.predict(pc) != taken);
        p.update(pc, taken);
    }
    return static_cast<double>(miss) /
           static_cast<double>(stream.size());
}

/** n repetitions of a fixed pattern for one branch. */
std::vector<std::pair<BranchPc, bool>>
patternStream(BranchPc pc, const std::vector<bool> &pattern, int reps)
{
    std::vector<std::pair<BranchPc, bool>> out;
    for (int r = 0; r < reps; ++r)
        for (bool taken : pattern)
            out.emplace_back(pc, taken);
    return out;
}

} // namespace

// ---------------------------------------------------------- index policies

TEST(ModuloIndexer, WrapsLowOrderBits)
{
    ModuloIndexer idx(1024, 3);
    EXPECT_EQ(idx.index(0x400000), (0x400000 >> 3) % 1024);
    // Two branches 1024 slots apart collide.
    EXPECT_EQ(idx.index(0x400000), idx.index(0x400000 + 1024 * 8));
    // Adjacent branches do not.
    EXPECT_NE(idx.index(0x400000), idx.index(0x400008));
    EXPECT_EQ(idx.tableSize(), 1024u);
}

TEST(AllocatedIndexer, UsesAssignmentWithModuloFallback)
{
    std::unordered_map<BranchPc, std::uint32_t> assign{
        {0x400000, 7}, {0x400008, 7}, {0x400010, 3}};
    AllocatedIndexer idx(assign, 16, 3);
    EXPECT_EQ(idx.index(0x400000), 7u);
    EXPECT_EQ(idx.index(0x400008), 7u); // deliberate sharing
    EXPECT_EQ(idx.index(0x400010), 3u);
    // Unallocated branch falls back to PC hashing.
    EXPECT_EQ(idx.index(0x400018), (0x400018 >> 3) % 16);
    EXPECT_EQ(idx.allocatedCount(), 3u);
}

TEST(AllocatedIndexerDeath, RejectsOutOfRangeAssignment)
{
    std::unordered_map<BranchPc, std::uint32_t> assign{{0x400000, 16}};
    EXPECT_DEATH(AllocatedIndexer(assign, 16, 3), "exceeds table");
}

TEST(IdealIndexer, PrivateIndexPerBranch)
{
    IdealIndexer idx;
    std::uint64_t a = idx.index(0x400000);
    std::uint64_t b = idx.index(0x400008);
    std::uint64_t c = idx.index(0x400000 + 1024 * 8); // would alias
    EXPECT_NE(a, b);
    EXPECT_NE(a, c);
    EXPECT_NE(b, c);
    EXPECT_EQ(idx.index(0x400000), a); // stable
    EXPECT_EQ(idx.seen(), 3u);
    EXPECT_EQ(idx.tableSize(), 0u); // unbounded
}

// --------------------------------------------------------------- bimodal

TEST(Bimodal, LearnsBias)
{
    BimodalPredictor p(std::make_unique<ModuloIndexer>(256), 2);
    auto stream = patternStream(0x400000, {true}, 1000);
    EXPECT_LT(missRate(p, stream), 0.01);
}

TEST(Bimodal, ToleratesSingleAnomaly)
{
    BimodalPredictor p(std::make_unique<ModuloIndexer>(256), 2);
    // Saturate taken, inject one not-taken, verify next is still taken.
    for (int i = 0; i < 10; ++i)
        p.update(0x100, true);
    p.update(0x100, false);
    EXPECT_TRUE(p.predict(0x100));
}

TEST(Bimodal, AliasedBranchesInterfere)
{
    // Two branches mapping to the same entry with opposite bias miss
    // often; the same pair on distinct entries converges.
    BranchPc hot = 0x400000;
    BranchPc alias = hot + 256 * 8; // same (pc>>3)%256
    std::vector<std::pair<BranchPc, bool>> stream;
    for (int i = 0; i < 2000; ++i) {
        stream.emplace_back(hot, true);
        stream.emplace_back(alias, false);
    }
    BimodalPredictor aliased(std::make_unique<ModuloIndexer>(256), 2);
    BimodalPredictor wide(std::make_unique<ModuloIndexer>(65536), 2);
    double aliased_rate = missRate(aliased, stream);
    double wide_rate = missRate(wide, stream);
    // The 2-bit counter oscillates between the weak states: one of
    // the two branches misses every time (~50% overall).
    EXPECT_NEAR(aliased_rate, 0.5, 0.05);
    EXPECT_LT(wide_rate, 0.01);
}

// ------------------------------------------------------------- two-level

TEST(GAg, LearnsGlobalAlternation)
{
    GAgPredictor p(8, 2);
    auto stream = patternStream(0x100, {true, false}, 2000);
    // After warmup the global history disambiguates perfectly.
    std::vector<std::pair<BranchPc, bool>> warm(stream.begin(),
                                                stream.begin() + 100);
    std::vector<std::pair<BranchPc, bool>> rest(stream.begin() + 100,
                                                stream.end());
    missRate(p, warm);
    EXPECT_LT(missRate(p, rest), 0.01);
}

TEST(Gshare, SeparatesBranchesWithSameHistory)
{
    // Two branches, both always seeing the same global history but
    // with opposite outcomes: GAg must fail, gshare separates by PC.
    std::vector<std::pair<BranchPc, bool>> stream;
    for (int i = 0; i < 4000; ++i) {
        stream.emplace_back(0x400000, true);
        stream.emplace_back(0x400008, false);
    }
    GsharePredictor gshare(10, 2, 3);
    double rate = missRate(gshare, stream);
    EXPECT_LT(rate, 0.05);
}

TEST(PAg, LearnsPerBranchPeriodicPattern)
{
    PAgPredictor p(std::make_unique<ModuloIndexer>(1024), 12, 4096, 2);
    auto stream = patternStream(0x400000,
                                {true, true, false, true, false},
                                2000);
    std::vector<std::pair<BranchPc, bool>> warm(stream.begin(),
                                                stream.begin() + 500);
    std::vector<std::pair<BranchPc, bool>> rest(stream.begin() + 500,
                                                stream.end());
    missRate(p, warm);
    EXPECT_LT(missRate(p, rest), 0.01);
}

namespace
{

/**
 * Adversarial interference stream: branch A strictly alternates
 * (predictable from its own history) while branch B, which shares A's
 * conventional BHT entry, resolves randomly and executes a *variable*
 * number of times between A's instances.  The variable count shifts
 * A's outcomes to unpredictable positions of the shared history
 * register, so the PHT cannot isolate them; with a private register A
 * stays perfectly predictable.
 */
std::vector<std::pair<BranchPc, bool>>
aliasedPairStream(BranchPc a, BranchPc b, int pairs)
{
    Pcg32 rng(31);
    std::vector<std::pair<BranchPc, bool>> stream;
    bool a_taken = false;
    for (int i = 0; i < pairs; ++i) {
        a_taken = !a_taken;
        stream.emplace_back(a, a_taken);
        std::uint32_t reps = 1 + rng.nextBounded(3);
        for (std::uint32_t r = 0; r < reps; ++r)
            stream.emplace_back(b, rng.nextBool(0.5));
    }
    return stream;
}

} // namespace

TEST(PAg, BhtAliasingDestroysHistory)
{
    BranchPc a = 0x400000;
    BranchPc b = a + 1024 * 8; // same (pc>>3)%1024 entry
    auto stream = aliasedPairStream(a, b, 4000);

    PAgPredictor aliased(std::make_unique<ModuloIndexer>(1024), 12,
                         4096, 2);
    PAgPredictor ideal(std::make_unique<IdealIndexer>(), 12, 4096, 2);
    double aliased_rate = missRate(aliased, stream);
    double ideal_rate = missRate(ideal, stream);
    // Ideal: A near-perfect, B ~50% of its 2/3 share -> ~0.35.
    // Aliased: A unpredictable too -> noticeably worse.
    EXPECT_LT(ideal_rate, 0.42);
    EXPECT_GT(aliased_rate, ideal_rate + 0.08);
}

TEST(PAg, AllocationRemovesAliasing)
{
    // The same adversarial pair, but an allocator-style assignment
    // gives them distinct BHT entries in a tiny 4-entry table.
    BranchPc a = 0x400000;
    BranchPc b = a + 1024 * 8;
    auto stream = aliasedPairStream(a, b, 4000);

    std::unordered_map<BranchPc, std::uint32_t> assign{{a, 0}, {b, 1}};
    PAgPredictor alloc(std::make_unique<AllocatedIndexer>(assign, 4),
                       12, 4096, 2);
    PAgPredictor ideal(std::make_unique<IdealIndexer>(), 12, 4096, 2);
    EXPECT_NEAR(missRate(alloc, stream), missRate(ideal, stream),
                0.02);
}

TEST(PAg, InfiniteBhtGrowsOnDemand)
{
    PAgPredictor p(std::make_unique<IdealIndexer>(), 12, 4096, 2);
    EXPECT_EQ(p.bhtSize(), 0u);
    for (int i = 0; i < 100; ++i) {
        p.predict(0x400000 + 8ull * i);
        p.update(0x400000 + 8ull * i, true);
    }
    EXPECT_EQ(p.bhtSize(), 100u);
}

TEST(PAs, LearnsPatternsPerSet)
{
    PAsPredictor p(std::make_unique<ModuloIndexer>(1024), 8, 4, 2, 3);
    auto stream = patternStream(0x400000, {true, false, false}, 2000);
    std::vector<std::pair<BranchPc, bool>> warm(stream.begin(),
                                                stream.begin() + 300);
    std::vector<std::pair<BranchPc, bool>> rest(stream.begin() + 300,
                                                stream.end());
    missRate(p, warm);
    EXPECT_LT(missRate(p, rest), 0.01);
}

// -------------------------------------------------------------- static

TEST(StaticPredictors, FixedDirections)
{
    AlwaysTakenPredictor t;
    AlwaysNotTakenPredictor nt;
    EXPECT_TRUE(t.predict(0x1234));
    EXPECT_FALSE(nt.predict(0x1234));
}

TEST(ProfileStatic, FollowsProfileMajorities)
{
    ProfileStaticPredictor p({{0x100, true}, {0x200, false}}, true);
    EXPECT_TRUE(p.predict(0x100));
    EXPECT_FALSE(p.predict(0x200));
    EXPECT_TRUE(p.predict(0x300)); // default
}

// ------------------------------------------------------------ tournament

TEST(Tournament, BeatsWorstComponent)
{
    // Mixed stream: one strongly biased branch (bimodal wins) and one
    // alternating branch (gshare wins).  The tournament should track
    // close to the better component on each.
    Pcg32 rng(9);
    std::vector<std::pair<BranchPc, bool>> stream;
    bool alt = false;
    for (int i = 0; i < 6000; ++i) {
        stream.emplace_back(0x400000, rng.nextBool(0.98));
        alt = !alt;
        stream.emplace_back(0x400008, alt);
    }

    PredictorSpec spec;
    spec.kind = PredictorKind::Tournament;
    spec.bht_entries = 4096;
    spec.history_bits = 10;
    PredictorPtr tournament = makePredictor(spec);

    BimodalPredictor bimodal(std::make_unique<ModuloIndexer>(4096), 2);
    double t_rate = missRate(*tournament, stream);
    double b_rate = missRate(bimodal, stream);
    // Bimodal alone loses ~25% (alternating branch); the tournament
    // should do much better.
    EXPECT_GT(b_rate, 0.2);
    EXPECT_LT(t_rate, 0.1);
}

// --------------------------------------------------------------- factory

TEST(Factory, BuildsEveryKind)
{
    for (PredictorKind kind :
         {PredictorKind::AlwaysTaken, PredictorKind::AlwaysNotTaken,
          PredictorKind::Bimodal, PredictorKind::GAg,
          PredictorKind::Gshare, PredictorKind::PAgModulo,
          PredictorKind::PAgAllocated, PredictorKind::PAgIdeal,
          PredictorKind::PAs, PredictorKind::Tournament}) {
        PredictorSpec spec;
        spec.kind = kind;
        PredictorPtr p = makePredictor(spec);
        ASSERT_NE(p, nullptr) << predictorKindName(kind);
        // Smoke: runs a few dynamic branches without dying.
        for (int i = 0; i < 32; ++i) {
            p->predict(0x400000 + 8ull * (i % 4));
            p->update(0x400000 + 8ull * (i % 4), i % 2 == 0);
        }
        EXPECT_FALSE(p->name().empty());
        p->reset();
    }
}

TEST(Factory, PaperSpecsMatchPaperParameters)
{
    PredictorSpec base = paperBaselineSpec();
    EXPECT_EQ(base.kind, PredictorKind::PAgModulo);
    EXPECT_EQ(base.bht_entries, 1024u);
    EXPECT_EQ(base.pht_entries, 4096u);
    EXPECT_EQ(base.history_bits, 12u);

    PredictorSpec ideal = interferenceFreeSpec();
    EXPECT_EQ(ideal.kind, PredictorKind::PAgIdeal);

    PredictorSpec alloc = allocatedSpec({{0x400000, 5}}, 128);
    EXPECT_EQ(alloc.kind, PredictorKind::PAgAllocated);
    EXPECT_EQ(alloc.bht_entries, 128u);
    EXPECT_EQ(alloc.assignment.size(), 1u);
}

TEST(Predictors, ResetRestoresInitialBehavior)
{
    // Train hard one way, reset, and verify the first prediction
    // matches a freshly constructed predictor's.
    PredictorSpec spec = paperBaselineSpec();
    PredictorPtr trained = makePredictor(spec);
    PredictorPtr fresh = makePredictor(spec);
    for (int i = 0; i < 1000; ++i)
        trained->update(0x400000, false);
    trained->reset();
    EXPECT_EQ(trained->predict(0x400000), fresh->predict(0x400000));
}

TEST(Predictors, IdealPAgResetDropsGrownFootprint)
{
    // An unbounded (ideal) indexer grows the BHT on demand; reset()
    // must hand that memory back and forget the id assignments, so a
    // reset predictor is indistinguishable from a fresh one.
    PAgPredictor p(std::make_unique<IdealIndexer>(), 12, 4096, 2);
    for (int i = 0; i < 500; ++i) {
        BranchPc pc = 0x400000 + 8ull * i;
        p.predict(pc);
        p.update(pc, i % 2 == 0);
    }
    EXPECT_EQ(p.bhtSize(), 500u);

    p.reset();
    EXPECT_EQ(p.bhtSize(), 0u);

    // After reset the indexer re-assigns ids from scratch: replaying
    // the same stream mispredicts exactly like a fresh predictor.
    PAgPredictor fresh(std::make_unique<IdealIndexer>(), 12, 4096, 2);
    Pcg32 rng(77);
    int reset_misses = 0, fresh_misses = 0;
    for (int i = 0; i < 4000; ++i) {
        BranchPc pc = 0x400000 + 8ull * rng.nextBounded(64);
        bool taken = rng.nextBool(0.6);
        reset_misses += p.predict(pc) != taken;
        fresh_misses += fresh.predict(pc) != taken;
        p.update(pc, taken);
        fresh.update(pc, taken);
    }
    EXPECT_EQ(reset_misses, fresh_misses);
    EXPECT_EQ(p.bhtSize(), fresh.bhtSize());
}

TEST(Predictors, IdealPAsResetMatchesFresh)
{
    // Same footprint contract for PAs over an unbounded indexer.
    PAsPredictor p(std::make_unique<IdealIndexer>(), 8, 4, 2, 3);
    for (int i = 0; i < 300; ++i) {
        BranchPc pc = 0x400000 + 8ull * i;
        p.predict(pc);
        p.update(pc, true);
    }
    p.reset();

    PAsPredictor fresh(std::make_unique<IdealIndexer>(), 8, 4, 2, 3);
    Pcg32 rng(79);
    int reset_misses = 0, fresh_misses = 0;
    for (int i = 0; i < 4000; ++i) {
        BranchPc pc = 0x400000 + 8ull * rng.nextBounded(64);
        bool taken = rng.nextBool(0.7);
        reset_misses += p.predict(pc) != taken;
        fresh_misses += fresh.predict(pc) != taken;
        p.update(pc, taken);
        fresh.update(pc, taken);
    }
    EXPECT_EQ(reset_misses, fresh_misses);
}

// ------------------------------------------- spec string parsing

TEST(SpecParse, EveryKindKeyword)
{
    EXPECT_EQ(parsePredictorSpec("taken").kind,
              PredictorKind::AlwaysTaken);
    EXPECT_EQ(parsePredictorSpec("not-taken").kind,
              PredictorKind::AlwaysNotTaken);
    EXPECT_EQ(parsePredictorSpec("bimodal").kind,
              PredictorKind::Bimodal);
    EXPECT_EQ(parsePredictorSpec("gag").kind, PredictorKind::GAg);
    EXPECT_EQ(parsePredictorSpec("gshare").kind,
              PredictorKind::Gshare);
    EXPECT_EQ(parsePredictorSpec("pag").kind,
              PredictorKind::PAgModulo);
    EXPECT_EQ(parsePredictorSpec("pag-ideal").kind,
              PredictorKind::PAgIdeal);
    EXPECT_EQ(parsePredictorSpec("pas").kind, PredictorKind::PAs);
    EXPECT_EQ(parsePredictorSpec("tournament").kind,
              PredictorKind::Tournament);
    EXPECT_EQ(parsePredictorSpec("agree").kind, PredictorKind::Agree);
}

TEST(SpecParse, ParametersOverrideDefaults)
{
    PredictorSpec spec =
        parsePredictorSpec("pag:bht=256,hist=10,pht=8192,ctr=3");
    EXPECT_EQ(spec.kind, PredictorKind::PAgModulo);
    EXPECT_EQ(spec.bht_entries, 256u);
    EXPECT_EQ(spec.history_bits, 10u);
    EXPECT_EQ(spec.pht_entries, 8192u);
    EXPECT_EQ(spec.counter_bits, 3u);

    PredictorSpec pas = parsePredictorSpec("pas:bht=512,sets=8");
    EXPECT_EQ(pas.pht_sets, 8u);
    EXPECT_EQ(pas.bht_entries, 512u);

    PredictorSpec shifted = parsePredictorSpec("gshare:shift=2");
    EXPECT_EQ(shifted.insn_shift, 2u);

    // Untouched fields keep PredictorSpec's defaults.
    PredictorSpec defaults = parsePredictorSpec("gshare");
    PredictorSpec reference;
    EXPECT_EQ(defaults.bht_entries, reference.bht_entries);
    EXPECT_EQ(defaults.history_bits, reference.history_bits);
}

TEST(SpecParse, ForgivingAboutCaseAndWhitespace)
{
    PredictorSpec spec =
        parsePredictorSpec("  PAg : BHT=64 , Hist=5  ");
    EXPECT_EQ(spec.kind, PredictorKind::PAgModulo);
    EXPECT_EQ(spec.bht_entries, 64u);
    EXPECT_EQ(spec.history_bits, 5u);
}

TEST(SpecParse, ParsedSpecBuildsARunnablePredictor)
{
    PredictorPtr p = makePredictor(
        parsePredictorSpec("tournament:bht=128,hist=8"));
    for (int i = 0; i < 100; ++i)
        p->update(0x400000 + 8 * (i % 4), (i % 2) == 0);
    (void)p->predict(0x400000);
}

TEST(SpecParseDeath, MalformedSpecsAreFatal)
{
    EXPECT_EXIT(parsePredictorSpec(""),
                ::testing::ExitedWithCode(1), "empty predictor spec");
    EXPECT_EXIT(parsePredictorSpec("frobnicator"),
                ::testing::ExitedWithCode(1), "unknown kind");
    EXPECT_EXIT(parsePredictorSpec("pag:"),
                ::testing::ExitedWithCode(1), "empty parameter list");
    EXPECT_EXIT(parsePredictorSpec("pag:bht"),
                ::testing::ExitedWithCode(1), "form key=value");
    EXPECT_EXIT(parsePredictorSpec("pag:zzz=4"),
                ::testing::ExitedWithCode(1), "unknown key");
    EXPECT_EXIT(parsePredictorSpec("pag:bht=abc"),
                ::testing::ExitedWithCode(1), "unsigned integer");
    EXPECT_EXIT(parsePredictorSpec("pag:hist=40"),
                ::testing::ExitedWithCode(1), "hist");
    EXPECT_EXIT(parsePredictorSpec("pag:ctr=0"),
                ::testing::ExitedWithCode(1), "ctr");
}
