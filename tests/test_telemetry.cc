/**
 * @file
 * Per-branch telemetry tests: the entropy estimator's edge cases, the
 * shard-merge algebra (any segmentation folds to the serial map,
 * bit-identically), and the reconciliation invariants between
 * per-branch counts and the aggregate counters the run report
 * cross-checks.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "obs/branch_telemetry.hh"
#include "predict/factory.hh"
#include "predict/twolevel.hh"
#include "profile/shard.hh"
#include "sim/bpred_sim.hh"
#include "trace/trace.hh"
#include "workload/presets.hh"

using namespace bwsa;
using obs::BranchTelemetry;
using obs::BranchTelemetryMap;

namespace
{

/** Record one branch's direction sequence with ascending stamps. */
void
recordSequence(BranchTelemetryMap &map, std::uint64_t pc,
               const std::vector<bool> &directions,
               std::uint64_t start = 0)
{
    std::uint64_t ts = start;
    for (bool taken : directions)
        map.record(pc, taken, ts += 4);
}

} // namespace

TEST(BranchTelemetry, ConstantBranchHasZeroEntropy)
{
    BranchTelemetryMap map; // default order 4
    recordSequence(map, 0x10, std::vector<bool>(100, true));

    const BranchTelemetry *t = map.find(0x10);
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->executed, 100u);
    EXPECT_EQ(t->taken, 100u);
    EXPECT_EQ(t->transitions, 0u);
    EXPECT_DOUBLE_EQ(t->takenRate(), 1.0);
    EXPECT_DOUBLE_EQ(t->transitionRate(), 0.0);
    EXPECT_DOUBLE_EQ(t->entropyBits(), 0.0);
    // Executions 5..100 had a full 4-outcome context.
    EXPECT_EQ(t->contextSamples(), 96u);
}

TEST(BranchTelemetry, AlternatingBranchHasZeroEntropy)
{
    // T N T N ... is fully predictable from one outcome of history:
    // entropy 0 for any order >= 1, transition rate exactly 1.
    BranchTelemetryMap map(1);
    std::vector<bool> directions;
    for (int i = 0; i < 64; ++i)
        directions.push_back(i % 2 == 0);
    recordSequence(map, 0x20, directions);

    const BranchTelemetry *t = map.find(0x20);
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->transitions, 63u);
    EXPECT_DOUBLE_EQ(t->transitionRate(), 1.0);
    EXPECT_DOUBLE_EQ(t->entropyBits(), 0.0);
}

TEST(BranchTelemetry, SingleExecutionHasZeroEntropy)
{
    BranchTelemetryMap map;
    map.record(0x30, true, 42);

    const BranchTelemetry *t = map.find(0x30);
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->executed, 1u);
    EXPECT_EQ(t->transitions, 0u);
    EXPECT_EQ(t->contextSamples(), 0u);
    EXPECT_DOUBLE_EQ(t->transitionRate(), 0.0);
    EXPECT_DOUBLE_EQ(t->entropyBits(), 0.0);
    EXPECT_EQ(t->first_seen, 42u);
    EXPECT_EQ(t->last_seen, 42u);
}

TEST(BranchTelemetry, PeriodicPatternWithinOrderHasZeroEntropy)
{
    // Period-3 pattern T T N under order-4 contexts: every full
    // context determines the next outcome, so the branch measures as
    // perfectly predictable.
    BranchTelemetryMap map;
    std::vector<bool> directions;
    for (int i = 0; i < 90; ++i)
        directions.push_back(i % 3 != 2);
    recordSequence(map, 0x40, directions);

    const BranchTelemetry *t = map.find(0x40);
    ASSERT_NE(t, nullptr);
    EXPECT_GT(t->contextSamples(), 0u);
    EXPECT_DOUBLE_EQ(t->entropyBits(), 0.0);
}

TEST(BranchTelemetry, BalancedContextsMeasureOneBit)
{
    // k x (T T N N) plus a final T makes both order-1 contexts see
    // exactly half taken / half not-taken: a 1-history predictor
    // learns nothing, so H(outcome | 1 outcome) is exactly 1 bit.
    BranchTelemetryMap map(1);
    std::vector<bool> directions;
    for (int k = 0; k < 32; ++k) {
        directions.push_back(true);
        directions.push_back(true);
        directions.push_back(false);
        directions.push_back(false);
    }
    directions.push_back(true);
    recordSequence(map, 0x50, directions);

    const BranchTelemetry *t = map.find(0x50);
    ASSERT_NE(t, nullptr);
    EXPECT_DOUBLE_EQ(t->entropyBits(), 1.0);
}

TEST(BranchTelemetry, MergeMatchesSerialForAnySegmentation)
{
    // A deterministic pseudo-random interleaving of several branches,
    // split at every tested segment count: the segment-map fold must
    // be bit-identical (operator==, which compares every counter,
    // context bucket and boundary register) to the serial map.
    std::minstd_rand rng(12345);
    struct Event
    {
        std::uint64_t pc;
        bool taken;
        std::uint64_t ts;
    };
    std::vector<Event> events;
    const std::uint64_t pcs[] = {0x100, 0x104, 0x2a8, 0x400, 0x404};
    for (std::uint64_t i = 0; i < 500; ++i)
        events.push_back({pcs[rng() % 5], (rng() & 4) != 0, 10 + i});

    for (unsigned order : {1u, 4u, 8u}) {
        BranchTelemetryMap serial(order);
        for (const Event &e : events)
            serial.record(e.pc, e.taken, e.ts);

        for (std::size_t segments : {2u, 3u, 5u, 17u}) {
            BranchTelemetryMap merged(order);
            std::size_t begin = 0;
            for (std::size_t s = 0; s < segments; ++s) {
                std::size_t end =
                    events.size() * (s + 1) / segments;
                BranchTelemetryMap part(order);
                for (std::size_t i = begin; i < end; ++i)
                    part.record(events[i].pc, events[i].taken,
                                events[i].ts);
                merged.mergeAppend(part);
                begin = end;
            }
            EXPECT_TRUE(merged == serial)
                << "order " << order << ", " << segments
                << " segments";
        }
    }
}

TEST(BranchTelemetry, MergeRepairsShortBoundarySegments)
{
    // Segments shorter than the history order exercise the prefix
    // replay: the second segment's 2 executions cannot fill an
    // order-4 context on their own, yet the fold must still count the
    // boundary-crossing contexts the serial run saw.
    std::vector<bool> directions = {true,  false, true, true,
                                    false, true,  false};
    BranchTelemetryMap serial(4);
    recordSequence(serial, 0x60, directions);

    for (std::size_t split = 0; split <= directions.size(); ++split) {
        BranchTelemetryMap head(4);
        BranchTelemetryMap tail(4);
        std::uint64_t ts = 0;
        for (std::size_t i = 0; i < directions.size(); ++i) {
            ts += 4;
            (i < split ? head : tail)
                .record(0x60, directions[i], ts);
        }
        head.mergeAppend(tail);
        EXPECT_TRUE(head == serial) << "split at " << split;
    }
}

TEST(BranchTelemetry, MergeWithMismatchedOrderPanics)
{
    BranchTelemetryMap a(4);
    BranchTelemetryMap b(6);
    EXPECT_DEATH(a.mergeAppend(b), "mismatched orders");
}

TEST(BranchTelemetry, InvalidOrderPanics)
{
    EXPECT_DEATH(BranchTelemetryMap(0), "order");
    EXPECT_DEATH(BranchTelemetryMap(13), "order");
}

TEST(BranchTelemetry, ShardedProfilingTelemetryMatchesSerial)
{
    // End-to-end through the sharded engine: the per-segment cold
    // maps folded in segment order must equal the serial map, for the
    // same reason sharded conflict graphs equal serial ones.
    Workload w = makeWorkload("m88ksim", "", 0.05);
    MemoryTrace trace;
    w.source().replay(trace);
    ASSERT_FALSE(trace.empty());

    BranchTelemetryMap serial_map;
    ShardConfig serial_config;
    serial_config.interleave.telemetry = &serial_map;
    ConflictGraph serial_graph;
    profileTraceSharded(trace, serial_graph, serial_config);

    BranchTelemetryMap sharded_map;
    ShardConfig sharded_config;
    sharded_config.shards = 4;
    sharded_config.threads = 2;
    sharded_config.interleave.telemetry = &sharded_map;
    ConflictGraph sharded_graph;
    profileTraceSharded(trace, sharded_graph, sharded_config);

    EXPECT_FALSE(serial_map.empty());
    EXPECT_EQ(serial_map.totalExecuted(), trace.size());
    EXPECT_TRUE(sharded_map == serial_map);
}

TEST(BranchTelemetry, PerBranchSimCountsSumToAggregate)
{
    // The run report's first reconciliation invariant: per-branch
    // misprediction/execution counts sum exactly to the aggregate
    // RatioStat of the same replay.
    Workload w = makeWorkload("compress", "", 0.05);
    MemoryTrace trace;
    w.source().replay(trace);

    PredictorPtr predictor = makePredictor(paperBaselineSpec());
    PredictionStats stats =
        simulatePredictor(trace, *predictor, /*per_branch=*/true);

    std::uint64_t executed = 0;
    std::uint64_t mispredicts = 0;
    for (const auto &[pc, ratio] : stats.per_branch) {
        executed += ratio.total();
        mispredicts += ratio.events();
    }
    EXPECT_EQ(executed, stats.mispredicts.total());
    EXPECT_EQ(mispredicts, stats.mispredicts.events());
    EXPECT_EQ(executed, trace.size());
}

TEST(BranchTelemetry, ProbeAliasingSumsToDestructiveCounter)
{
    // The second reconciliation invariant: the probe's per-branch
    // victim counts -- and independently its aggressor counts -- sum
    // exactly to the aggregate destructive counter.
    Workload w = makeWorkload("m88ksim", "", 0.05);
    MemoryTrace trace;
    w.source().replay(trace);

    PredictorPtr predictor = makePredictor(paperBaselineSpec());
    auto &pag = dynamic_cast<PAgPredictor &>(*predictor);
    pag.enableInterferenceProbe();

    PredictionSim sim(*predictor);
    trace.replay(sim);

    const BhtInterferenceProbe *probe = pag.interferenceProbe();
    ASSERT_NE(probe, nullptr);
    std::uint64_t victims = 0;
    std::uint64_t aggressors = 0;
    for (const auto &[pc, aliasing] : probe->branchAliasing()) {
        victims += aliasing.victim;
        aggressors += aliasing.aggressor;
    }
    EXPECT_EQ(victims, probe->counters().destructive);
    EXPECT_EQ(aggressors, probe->counters().destructive);

    // topVictims honours its bound and its victim-count ordering.
    auto top = probe->topVictims(3);
    EXPECT_LE(top.size(), 3u);
    for (std::size_t i = 1; i < top.size(); ++i)
        EXPECT_GE(top[i - 1].second.victim, top[i].second.victim);
}
