/**
 * @file
 * Tests of the observability layer: JSON building, the metrics
 * registry (counter/gauge/histogram semantics, cross-thread shard
 * merging, scoped timers), phase-tracer span nesting and capacity,
 * and the run-report document round-trip.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/phase_tracer.hh"
#include "obs/progress.hh"
#include "obs/run_report.hh"
#include "util/logging.hh"

using namespace bwsa::obs;

namespace
{

/** Slurp a whole file. */
std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Unique temp path per test. */
std::string
tempPath(const std::string &stem)
{
    return testing::TempDir() + "bwsa_obs_" + stem;
}

} // namespace

// --- JSON ----------------------------------------------------------

TEST(Json, GoldenCompactDump)
{
    JsonValue doc = JsonValue::object();
    doc["name"] = "bwsa";
    doc["count"] = std::uint64_t(42);
    doc["delta"] = std::int64_t(-7);
    doc["ratio"] = 0.5;
    doc["whole"] = 2.0;
    doc["flag"] = true;
    doc["missing"] = JsonValue();
    JsonValue list = JsonValue::array();
    list.push(1);
    list.push("two");
    doc["list"] = std::move(list);

    EXPECT_EQ(doc.dumpString(0),
              "{\"name\":\"bwsa\",\"count\":42,\"delta\":-7,"
              "\"ratio\":0.5,\"whole\":2.0,\"flag\":true,"
              "\"missing\":null,\"list\":[1,\"two\"]}");
}

TEST(Json, StringEscaping)
{
    EXPECT_EQ(JsonValue::escape("a\"b\\c\n\t"),
              "\"a\\\"b\\\\c\\n\\t\"");
    // Control characters take the \u00xx form.
    EXPECT_EQ(JsonValue::escape(std::string(1, '\x01')), "\"\\u0001\"");
    // Non-ASCII bytes pass through (UTF-8 stays UTF-8).
    EXPECT_EQ(JsonValue::escape("caf\xc3\xa9"), "\"caf\xc3\xa9\"");
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    JsonValue doc = JsonValue::object();
    doc["zulu"] = 1;
    doc["alpha"] = 2;
    doc["zulu"] = 3; // overwrite keeps the original position

    ASSERT_EQ(doc.members().size(), 2u);
    EXPECT_EQ(doc.members()[0].first, "zulu");
    EXPECT_EQ(doc.members()[1].first, "alpha");
    EXPECT_EQ(doc.find("zulu")->asInt(), 3);
    EXPECT_EQ(doc.find("nope"), nullptr);
}

// --- Metrics registry ----------------------------------------------

TEST(Metrics, CounterAccumulates)
{
    MetricsRegistry registry;
    Counter hits = registry.counter("hits");
    hits.inc();
    hits.inc(41);

    // The same name resolves to the same series.
    registry.counter("hits").inc();

    MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counterValue("hits"), 43u);
    EXPECT_EQ(snap.counterValue("absent"), 0u);
    EXPECT_EQ(registry.seriesCount(), 1u);
}

TEST(Metrics, GaugeLastWriteWins)
{
    MetricsRegistry registry;
    Gauge g = registry.gauge("window");
    g.set(12.5);
    g.set(99.25);

    MetricsSnapshot snap = registry.snapshot();
    const SeriesSnapshot *s = snap.find("window");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->kind, SeriesKind::Gauge);
    EXPECT_DOUBLE_EQ(s->gauge, 99.25);
}

TEST(Metrics, HistogramBucketsAreInclusiveUpperBounds)
{
    MetricsRegistry registry;
    HistogramMetric h = registry.histogram("sizes", {10, 100});
    h.observe(5);
    h.observe(10);  // inclusive: lands in the 10 bucket
    h.observe(50);
    h.observe(500); // overflow

    MetricsSnapshot snap = registry.snapshot();
    const SeriesSnapshot *s = snap.find("sizes");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->histogram.count, 4u);
    EXPECT_EQ(s->histogram.sum, 565u);
    ASSERT_EQ(s->histogram.buckets.size(), 3u); // 2 bounds + overflow
    EXPECT_EQ(s->histogram.buckets[0].second, 2u);
    EXPECT_EQ(s->histogram.buckets[1].second, 1u);
    EXPECT_EQ(s->histogram.buckets[2].second, 1u);
    EXPECT_DOUBLE_EQ(s->histogram.mean(), 565.0 / 4.0);
}

TEST(Metrics, ShardsMergeAcrossThreads)
{
    MetricsRegistry registry;
    Counter total = registry.counter("total");

    constexpr int threads = 8;
    constexpr std::uint64_t per_thread = 10000;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t)
        pool.emplace_back([&] {
            for (std::uint64_t i = 0; i < per_thread; ++i)
                total.inc();
        });
    for (std::thread &t : pool)
        t.join();

    // Shards survive thread exit; the snapshot merge sees every shard.
    EXPECT_EQ(registry.snapshot().counterValue("total"),
              threads * per_thread);
}

TEST(Metrics, ResetZeroes)
{
    MetricsRegistry registry;
    registry.counter("c").inc(7);
    registry.gauge("g").set(3.0);
    registry.histogram("h", {10}).observe(4);
    registry.reset();

    MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counterValue("c"), 0u);
    EXPECT_DOUBLE_EQ(snap.find("g")->gauge, 0.0);
    EXPECT_EQ(snap.find("h")->histogram.count, 0u);
    EXPECT_EQ(registry.seriesCount(), 3u); // series themselves remain
}

TEST(Metrics, ScopedTimerObservesElapsedNanoseconds)
{
    MetricsRegistry registry;
    {
        ScopedTimer timer(registry, "phase_ns");
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    MetricsSnapshot snap = registry.snapshot();
    const SeriesSnapshot *s = snap.find("phase_ns");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->histogram.count, 1u);
    EXPECT_GE(s->histogram.sum, 2'000'000u); // slept >= 2ms

    // The observation must land in exactly one bucket.
    std::uint64_t bucketed = 0;
    for (const auto &[bound, count] : s->histogram.buckets)
        bucketed += count;
    EXPECT_EQ(bucketed, 1u);
}

TEST(Metrics, HistogramBoundaryObservationsLandInTheirBucket)
{
    // Exact-boundary values belong to the bucket they bound; one past
    // the boundary belongs to the next.
    MetricsRegistry registry;
    HistogramMetric h = registry.histogram("edges", {0, 10, 100});
    h.observe(0);   // bucket 0 (bound 0 is inclusive)
    h.observe(1);   // bucket 1
    h.observe(10);  // bucket 1
    h.observe(11);  // bucket 2
    h.observe(100); // bucket 2
    h.observe(101); // overflow

    MetricsSnapshot snap = registry.snapshot();
    const SeriesSnapshot *s = snap.find("edges");
    ASSERT_NE(s, nullptr);
    ASSERT_EQ(s->histogram.buckets.size(), 4u);
    EXPECT_EQ(s->histogram.buckets[0].second, 1u);
    EXPECT_EQ(s->histogram.buckets[1].second, 2u);
    EXPECT_EQ(s->histogram.buckets[2].second, 2u);
    EXPECT_EQ(s->histogram.buckets[3].second, 1u);
    EXPECT_EQ(s->histogram.count, 6u);
    EXPECT_EQ(s->histogram.sum, 223u);
}

TEST(Metrics, HistogramAboveTopBucketAllOverflow)
{
    MetricsRegistry registry;
    HistogramMetric h = registry.histogram("over", {8});
    for (std::uint64_t v : {9u, 1000u, ~0u})
        h.observe(v);

    MetricsSnapshot snap = registry.snapshot();
    const SeriesSnapshot *s = snap.find("over");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->histogram.count, 3u);
    ASSERT_EQ(s->histogram.buckets.size(), 2u);
    EXPECT_EQ(s->histogram.buckets[0].second, 0u);
    EXPECT_EQ(s->histogram.buckets[1].second, 3u); // all overflow
}

TEST(Metrics, HistogramSnapshotWhileSecondThreadWrites)
{
    // Snapshots are safe from any thread at any time.  Mid-write they
    // may be slightly torn across the relaxed cells, but every view
    // must stay well-formed and within the totals actually written,
    // and once the writer quiesces the merge is exact.
    MetricsRegistry registry;
    HistogramMetric h = registry.histogram("live", {1, 2});

    constexpr std::uint64_t writes = 200000;
    std::thread writer([&] {
        for (std::uint64_t i = 0; i < writes; ++i)
            h.observe(1);
    });

    for (int i = 0; i < 50; ++i) {
        MetricsSnapshot mid = registry.snapshot();
        const SeriesSnapshot *s = mid.find("live");
        ASSERT_NE(s, nullptr);
        ASSERT_EQ(s->histogram.buckets.size(), 3u);
        EXPECT_LE(s->histogram.count, writes);
        EXPECT_LE(s->histogram.sum, writes);
        // Only value 1 is ever observed: the other buckets stay 0.
        EXPECT_EQ(s->histogram.buckets[1].second, 0u);
        EXPECT_EQ(s->histogram.buckets[2].second, 0u);
    }
    writer.join();

    MetricsSnapshot final_snap = registry.snapshot();
    const SeriesSnapshot *s = final_snap.find("live");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->histogram.count, writes);
    EXPECT_EQ(s->histogram.sum, writes);
    EXPECT_EQ(s->histogram.buckets[0].second, writes);
}

// --- Progress heartbeat --------------------------------------------

TEST(Progress, QuietSuppressesHeartbeatAndFinalFlush)
{
    // The --quiet contract: nothing on stderr, not even the final
    // "progress: done" flush that stop() prints at other levels.
    bwsa::LogLevel saved = bwsa::logLevel();
    bwsa::setLogLevel(bwsa::LogLevel::Quiet);
    ProgressMeter meter;
    testing::internal::CaptureStderr();
    meter.start(0.1);
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    meter.stop();
    std::string quiet_output = testing::internal::GetCapturedStderr();
    EXPECT_EQ(quiet_output, "");

    // Same lifecycle at Normal does flush, so the assertion above is
    // meaningful.
    bwsa::setLogLevel(bwsa::LogLevel::Normal);
    testing::internal::CaptureStderr();
    meter.start(0.1);
    meter.stop();
    std::string normal_output = testing::internal::GetCapturedStderr();
    EXPECT_NE(normal_output.find("progress: done"), std::string::npos);
    bwsa::setLogLevel(saved);
}

// --- Phase tracer --------------------------------------------------

TEST(PhaseTracer, DisabledSpansRecordNothing)
{
    PhaseTracer &tracer = PhaseTracer::global();
    tracer.setEnabled(false);
    tracer.clear();
    {
        BWSA_SPAN("never");
    }
    EXPECT_TRUE(tracer.events().empty());
    EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(PhaseTracer, NestedSpansRecordDepthAndOrder)
{
    PhaseTracer &tracer = PhaseTracer::global();
    tracer.setEnabled(true);
    tracer.clear();
    {
        PhaseTracer::Span outer("outer");
        outer.addWork(10);
        {
            PhaseTracer::Span inner("inner");
            inner.addWork(3);
        }
        {
            PhaseTracer::Span inner("inner");
            inner.addWork(4);
        }
    }
    tracer.setEnabled(false);

    std::vector<SpanEvent> events = tracer.events();
    ASSERT_EQ(events.size(), 3u); // inner, inner, outer (completion order)
    EXPECT_EQ(events[0].name, "inner");
    EXPECT_EQ(events[0].depth, 1u);
    EXPECT_EQ(events[2].name, "outer");
    EXPECT_EQ(events[2].depth, 0u);
    EXPECT_GE(events[2].dur_ns,
              events[0].dur_ns); // outer contains inner

    std::vector<PhaseStat> stats = tracer.summarize();
    ASSERT_EQ(stats.size(), 2u);
    // Sorted by descending total time: outer first.
    EXPECT_EQ(stats[0].name, "outer");
    EXPECT_EQ(stats[0].count, 1u);
    EXPECT_EQ(stats[0].work, 10u);
    EXPECT_EQ(stats[1].name, "inner");
    EXPECT_EQ(stats[1].count, 2u);
    EXPECT_EQ(stats[1].work, 7u);
    EXPECT_GE(stats[1].max_ns, stats[1].min_ns);
}

TEST(PhaseTracer, CapacityCapCountsDrops)
{
    PhaseTracer &tracer = PhaseTracer::global();
    tracer.setEnabled(true);
    tracer.clear();
    tracer.setCapacity(2);
    for (int i = 0; i < 5; ++i) {
        BWSA_SPAN("tick");
    }
    tracer.setEnabled(false);

    EXPECT_EQ(tracer.events().size(), 2u);
    EXPECT_EQ(tracer.dropped(), 3u);

    tracer.setCapacity(262144);
    tracer.clear();
}

TEST(PhaseTracer, ChromeTraceIsWellFormed)
{
    PhaseTracer &tracer = PhaseTracer::global();
    tracer.setEnabled(true);
    tracer.clear();
    {
        BWSA_SPAN("chrome.phase");
    }
    tracer.setEnabled(false);

    std::string path = tempPath("chrome.json");
    tracer.writeChromeTrace(path);
    std::string text = readFile(path);
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"chrome.phase\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
    tracer.clear();
    std::remove(path.c_str());
}

TEST(PhaseTracer, SpansCarryWorkerAnnotation)
{
    PhaseTracer &tracer = PhaseTracer::global();
    tracer.setEnabled(true);
    tracer.clear();
    {
        PhaseTracer::Span tagged("sweep.cell");
        tagged.setWorker(3);
    }
    {
        PhaseTracer::Span untagged("sweep.cell");
    }
    tracer.setEnabled(false);

    std::vector<SpanEvent> events = tracer.events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].worker, 3u);
    EXPECT_EQ(events[1].worker, SpanEvent::no_worker);

    // The Chrome trace exposes the annotation as an args entry, only
    // on the tagged span.
    std::string path = tempPath("worker.json");
    tracer.writeChromeTrace(path);
    std::string text = readFile(path);
    EXPECT_NE(text.find("\"worker\":3"), std::string::npos);
    tracer.clear();
    std::remove(path.c_str());
}

// --- Run report ----------------------------------------------------

TEST(RunReport, DocumentStructureAndFileRoundTrip)
{
    RunReport report;
    report.begin("test_bench");
    report.setConfigValue("scale", "0.5");
    report.setConfigValue("scale", "0.25"); // overwrite, keep position
    report.setConfigValue("threshold", "100");
    report.addNote("hello");
    report.addTable("t", {"a", "b"}, {{"1", "2"}, {"3", "4"}});

    MetricsRegistry registry;
    registry.counter("rows").inc(2);
    std::vector<PhaseStat> phases(1);
    phases[0].name = "phase.one";
    phases[0].count = 3;
    phases[0].total_ns = 3'000'000;
    phases[0].min_ns = 500'000;
    phases[0].max_ns = 1'500'000;
    phases[0].work = 42;

    JsonValue doc = report.build(registry.snapshot(), phases, 1);
    EXPECT_EQ(doc.find("schema")->asString(), "bwsa.run_report.v4");
    EXPECT_EQ(doc.find("bench")->asString(), "test_bench");
    EXPECT_GT(doc.find("started_unix_ms")->asUint(), 0u);
    EXPECT_GE(doc.find("wall_seconds")->asDouble(), 0.0);
    EXPECT_EQ(doc.find("dropped_spans")->asUint(), 1u);

    const JsonValue *config = doc.find("config");
    ASSERT_NE(config, nullptr);
    ASSERT_EQ(config->members().size(), 2u);
    EXPECT_EQ(config->members()[0].first, "scale");
    EXPECT_EQ(config->members()[0].second.asString(), "0.25");

    const JsonValue *phase_list = doc.find("phases");
    ASSERT_EQ(phase_list->size(), 1u);
    EXPECT_EQ(phase_list->at(0).find("name")->asString(), "phase.one");
    EXPECT_DOUBLE_EQ(phase_list->at(0).find("total_ms")->asDouble(),
                     3.0);
    EXPECT_EQ(phase_list->at(0).find("work")->asUint(), 42u);

    const JsonValue *tables = doc.find("tables");
    ASSERT_EQ(tables->size(), 1u);
    EXPECT_EQ(tables->at(0).find("title")->asString(), "t");
    EXPECT_EQ(tables->at(0).find("rows")->at(1).at(0).asString(),
              "3");

    const JsonValue *metrics = doc.find("metrics");
    ASSERT_EQ(metrics->size(), 1u);
    EXPECT_EQ(metrics->at(0).find("name")->asString(), "rows");
    EXPECT_EQ(metrics->at(0).find("value")->asUint(), 2u);

    // v2/v3 sections are always present, as (possibly empty) arrays.
    const JsonValue *series = doc.find("timeseries");
    ASSERT_NE(series, nullptr);
    EXPECT_TRUE(series->isArray());
    const JsonValue *interference = doc.find("interference");
    ASSERT_NE(interference, nullptr);
    EXPECT_TRUE(interference->isArray());
    const JsonValue *branches = doc.find("branches");
    ASSERT_NE(branches, nullptr);
    EXPECT_TRUE(branches->isArray());

    // Serialization is stable through the filesystem.
    std::string golden = doc.dumpString(2);
    std::string path = tempPath("report.json");
    {
        std::ofstream out(path);
        out << golden << "\n";
    }
    EXPECT_EQ(readFile(path), golden + "\n");
    std::remove(path.c_str());
}

TEST(RunReport, InactiveUntilBegin)
{
    RunReport report;
    EXPECT_FALSE(report.active());
    report.begin("x");
    EXPECT_TRUE(report.active());
}
