/**
 * @file
 * Tests of the graph workload subsystem (workload/graph): generator
 * determinism and topology shape, the spec grammar (including the
 * token-naming error contract), kernel trace determinism across
 * replays / segment ranges / read modes, and the ResolvedWorkload
 * bridge that plugs graph traces into everything built for the
 * synthetic workloads.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>
#include <vector>

#include "obs/branch_telemetry.hh"
#include "obs/predictability.hh"
#include "store/block_trace.hh"
#include "trace/trace.hh"
#include "workload/graph/graph.hh"
#include "workload/graph/graph_spec.hh"
#include "workload/graph/kernels.hh"
#include "workload/presets.hh"

using namespace bwsa;
using namespace bwsa::graph;

namespace
{

/** All records of one replay, collected in memory. */
MemoryTrace
capture(const TraceSource &source)
{
    MemoryTrace trace;
    source.replay(trace);
    return trace;
}

bool
sameRecords(const MemoryTrace &a, const MemoryTrace &b)
{
    if (a.records().size() != b.records().size())
        return false;
    for (std::size_t i = 0; i < a.records().size(); ++i) {
        const BranchRecord &ra = a.records()[i];
        const BranchRecord &rb = b.records()[i];
        if (ra.pc != rb.pc || ra.timestamp != rb.timestamp ||
            ra.taken != rb.taken)
            return false;
    }
    return true;
}

/** Sink that reports done() after @p limit records. */
class CountingStopSink : public TraceSink
{
  public:
    explicit CountingStopSink(std::uint64_t limit) : _limit(limit) {}

    void onBranch(const BranchRecord &) override { ++_count; }

    bool done() const override { return _count >= _limit; }

    std::uint64_t count() const { return _count; }

  private:
    std::uint64_t _limit;
    std::uint64_t _count = 0;
};

std::string
tempPath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

} // namespace

// ---------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------

TEST(GraphGenerator, DeterministicForSameParams)
{
    GraphParams params;
    params.topology = GraphTopology::PowerLaw;
    params.nodes = 512;
    params.structure_seed = 7;
    Graph a = generateGraph(params);
    Graph b = generateGraph(params);
    EXPECT_EQ(a.row, b.row);
    EXPECT_EQ(a.adj, b.adj);
    EXPECT_EQ(a.weights, b.weights);
    EXPECT_GT(a.edgeCount(), 0u);
}

TEST(GraphGenerator, SeedChangesStructure)
{
    GraphParams params;
    params.nodes = 512;
    Graph a = generateGraph(params);
    params.structure_seed = 99;
    Graph b = generateGraph(params);
    EXPECT_NE(a.adj, b.adj);
}

TEST(GraphGenerator, CsrInvariantsHold)
{
    for (GraphTopology topology :
         {GraphTopology::Uniform, GraphTopology::PowerLaw,
          GraphTopology::Grid}) {
        GraphParams params;
        params.topology = topology;
        params.nodes = 300;
        Graph g = generateGraph(params);
        ASSERT_EQ(g.row.size(), g.nodeCount() + 1);
        EXPECT_EQ(g.row.front(), 0u);
        EXPECT_EQ(g.row.back(), g.adj.size());
        EXPECT_EQ(g.weights.size(), g.adj.size());
        for (std::size_t i = 0; i + 1 < g.row.size(); ++i)
            EXPECT_LE(g.row[i], g.row[i + 1]);
        for (std::uint32_t v : g.adj)
            EXPECT_LT(v, g.nodeCount());
    }
}

TEST(GraphGenerator, GridRoundsUpToSquare)
{
    GraphParams params;
    params.topology = GraphTopology::Grid;
    params.nodes = 30; // side 6 -> 36 nodes
    Graph g = generateGraph(params);
    EXPECT_EQ(g.nodeCount(), 36u);
    // Interior nodes of a 2-D grid have degree 4.
    std::uint32_t max_degree = 0;
    for (std::uint32_t n = 0; n < g.nodeCount(); ++n)
        max_degree = std::max(max_degree, g.degree(n));
    EXPECT_EQ(max_degree, 4u);
}

TEST(GraphGenerator, PowerLawIsHeavierTailedThanUniform)
{
    GraphParams params;
    params.nodes = 2048;
    params.topology = GraphTopology::Uniform;
    Graph uniform = generateGraph(params);
    params.topology = GraphTopology::PowerLaw;
    Graph powerlaw = generateGraph(params);

    auto maxDegree = [](const Graph &g) {
        std::uint32_t best = 0;
        for (std::uint32_t n = 0; n < g.nodeCount(); ++n)
            best = std::max(best, g.degree(n));
        return best;
    };
    EXPECT_GT(maxDegree(powerlaw), 2 * maxDegree(uniform));
}

TEST(GraphGeneratorDeath, RejectsDegenerateParams)
{
    GraphParams params;
    params.nodes = 1;
    EXPECT_EXIT(generateGraph(params), ::testing::ExitedWithCode(1),
                "nodes must be >= 2");
    params.nodes = 16;
    params.degree_skew = 1.5;
    EXPECT_EXIT(generateGraph(params), ::testing::ExitedWithCode(1),
                "skew must be in");
}

// ---------------------------------------------------------------------
// Spec grammar
// ---------------------------------------------------------------------

TEST(GraphSpec, ParsesKernelTopologyAndKnobs)
{
    GraphSpec spec = parseGraphSpec(
        "graph:cc:grid:nodes=128,degree=6,skew=0.25,wentropy=0.75,"
        "shuffle=0.5,replicate=12,sources=3,seed=41");
    EXPECT_EQ(spec.kernel.kernel, GraphKernel::Components);
    EXPECT_EQ(spec.graph.topology, GraphTopology::Grid);
    EXPECT_EQ(spec.graph.nodes, 128u);
    EXPECT_DOUBLE_EQ(spec.graph.mean_degree, 6.0);
    EXPECT_DOUBLE_EQ(spec.graph.degree_skew, 0.25);
    EXPECT_DOUBLE_EQ(spec.kernel.weight_entropy, 0.75);
    EXPECT_DOUBLE_EQ(spec.kernel.frontier_shuffle, 0.5);
    EXPECT_EQ(spec.kernel.replicate, 12u);
    EXPECT_EQ(spec.kernel.sources, 3u);
    EXPECT_EQ(spec.graph.structure_seed, 41u);
    // Input seed rides the structure seed unless a label overrides.
    EXPECT_EQ(spec.kernel.input_seed, 42u);
}

TEST(GraphSpec, IsGraphSpecDetects)
{
    EXPECT_TRUE(isGraphSpec("graph:bfs:powerlaw"));
    EXPECT_TRUE(isGraphSpec("  GRAPH:dfs:grid  "));
    EXPECT_FALSE(isGraphSpec("gcc"));
    EXPECT_FALSE(isGraphSpec("graphical"));
}

TEST(GraphSpec, PresetFamiliesAllParse)
{
    for (const std::string &spec_text : graphPresetSpecs()) {
        GraphSpec spec = parseGraphSpec(spec_text);
        EXPECT_EQ(spec.text, spec_text);
    }
}

TEST(GraphSpecDeath, ErrorsNameTheOffendingToken)
{
    // Every malformed spec is fatal with the bad token and the list
    // of supported alternatives in the message.
    EXPECT_EXIT(parseGraphSpec("graph:bsf:powerlaw"),
                ::testing::ExitedWithCode(1),
                "unknown kernel 'bsf'.*bfs dfs cc pagerank");
    EXPECT_EXIT(parseGraphSpec("graph:bfs:ring"),
                ::testing::ExitedWithCode(1),
                "unknown topology 'ring'.*uniform powerlaw grid");
    EXPECT_EXIT(parseGraphSpec("graph:bfs:grid:degre=4"),
                ::testing::ExitedWithCode(1),
                "unknown key 'degre'.*nodes degree skew");
    EXPECT_EXIT(parseGraphSpec("graph:bfs:grid:nodes"),
                ::testing::ExitedWithCode(1),
                "expected key=value, got 'nodes'");
    EXPECT_EXIT(parseGraphSpec("graph:bfs:grid:nodes=one"),
                ::testing::ExitedWithCode(1),
                "key 'nodes' needs an integer >= 2, got 'one'");
    EXPECT_EXIT(parseGraphSpec("graph:bfs:grid:skew=2"),
                ::testing::ExitedWithCode(1),
                "key 'skew' needs a number in \\[0, 1\\], got '2'");
    EXPECT_EXIT(parseGraphSpec("graph:bfs"),
                ::testing::ExitedWithCode(1), "missing topology");
    EXPECT_EXIT(parseGraphSpec("graph:bfs:grid:nodes=8:extra"),
                ::testing::ExitedWithCode(1),
                "unexpected segment 'extra'");
}

TEST(GraphSpecDeath, WorkloadInputAndScaleAreValidated)
{
    EXPECT_EXIT(makeGraphWorkload("graph:bfs:powerlaw", "ref"),
                ::testing::ExitedWithCode(1),
                "no input set 'ref'.*decimal seeds");
    EXPECT_EXIT(makeGraphWorkload("graph:bfs:powerlaw", "", 0.0),
                ::testing::ExitedWithCode(1),
                "scale must be positive");
}

TEST(ResolvedWorkloadDeath, UnknownPresetListsAlternatives)
{
    // The unknown-preset error names the valid presets and points at
    // the graph spec grammar.
    EXPECT_EXIT(resolveWorkload("nosuch"),
                ::testing::ExitedWithCode(1),
                "unknown workload preset 'nosuch'.*compress.*graph:");
}

// ---------------------------------------------------------------------
// Kernel traces
// ---------------------------------------------------------------------

TEST(GraphKernels, ReplayIsBitIdentical)
{
    for (const std::string &spec : graphPresetSpecs()) {
        ResolvedWorkload w = resolveWorkload(spec, "", 0.05);
        ASSERT_TRUE(w.isGraph());
        std::unique_ptr<TraceSource> source = w.source();
        MemoryTrace a = capture(*source);
        MemoryTrace b = capture(*source);
        EXPECT_GT(a.records().size(), 1000u) << spec;
        EXPECT_TRUE(sameRecords(a, b)) << spec;
    }
}

TEST(GraphKernels, TimestampsStrictlyAscend)
{
    ResolvedWorkload w = resolveWorkload("graph:cc:uniform", "", 0.05);
    MemoryTrace trace = capture(*w.source());
    for (std::size_t i = 1; i < trace.records().size(); ++i)
        ASSERT_GT(trace.records()[i].timestamp,
                  trace.records()[i - 1].timestamp);
}

TEST(GraphKernels, InputSeedChangesTrace)
{
    // Input labels are decimal seeds; different seeds pick different
    // roots / shuffles over the same structure.
    ResolvedWorkload a =
        resolveWorkload("graph:bfs:powerlaw:shuffle=0.5", "7", 0.05);
    ResolvedWorkload b =
        resolveWorkload("graph:bfs:powerlaw:shuffle=0.5", "8", 0.05);
    EXPECT_FALSE(sameRecords(capture(*a.source()),
                             capture(*b.source())));
}

TEST(GraphKernels, BudgetTruncates)
{
    GraphParams params;
    params.nodes = 256;
    Graph g = generateGraph(params);
    GraphKernelConfig config;
    config.max_instructions = 5000;
    MemoryTrace trace;
    GraphExecutionResult result = runGraphKernel(g, config, trace);
    EXPECT_TRUE(result.truncated);
    EXPECT_GE(result.instructions, config.max_instructions);
    // The budget stops the run promptly: the largest single retire is
    // an O(nodes) initialization sweep.
    EXPECT_LT(result.instructions,
              config.max_instructions + 4 * g.nodeCount());
    EXPECT_EQ(result.dynamic_branches, trace.records().size());
}

TEST(GraphKernels, SinkDoneStopsTheRun)
{
    GraphParams params;
    params.nodes = 256;
    Graph g = generateGraph(params);
    GraphKernelConfig config;
    CountingStopSink sink(500);
    GraphExecutionResult result = runGraphKernel(g, config, sink);
    // The stop lands within one neighbor-expansion step (at most a
    // couple of trailing branch sites).
    EXPECT_GE(sink.count(), 500u);
    EXPECT_LE(sink.count(), 503u);
    EXPECT_EQ(result.dynamic_branches, sink.count());
}

TEST(GraphKernels, PcsStayInTheKernelRegion)
{
    for (const std::string &spec :
         {std::string("graph:bfs:powerlaw"),
          std::string("graph:pagerank:powerlaw")}) {
        ResolvedWorkload w = resolveWorkload(spec, "", 0.02);
        MemoryTrace trace = capture(*w.source());
        std::set<std::uint64_t> pcs;
        for (const BranchRecord &r : trace.records()) {
            EXPECT_GE(r.pc, graph_text_base);
            EXPECT_LT(r.pc, graph_text_base + (4ull << 20));
            EXPECT_EQ((r.pc - graph_text_base) % insn_size, 0u);
            pcs.insert(r.pc);
        }
        // sites x replicate slots exist; a healthy run touches many.
        EXPECT_GT(pcs.size(), 100u) << spec;
    }
}

TEST(GraphKernels, EntropySpansAtLeastThreeBins)
{
    // The acceptance bar of the allocation-payoff study: the default
    // power-law BFS preset populates >= 3 predictability classes.
    ResolvedWorkload w =
        resolveWorkload("graph:bfs:powerlaw", "", 0.1);
    MemoryTrace trace = capture(*w.source());
    obs::BranchTelemetryMap telemetry;
    for (const BranchRecord &r : trace.records())
        telemetry.record(r.pc, r.taken, r.timestamp);

    obs::PredictabilityBinner binner;
    std::vector<std::uint64_t> bins(binner.binCount(), 0);
    for (std::uint64_t pc : telemetry.pcs())
        ++bins[binner.binOf(telemetry.find(pc)->entropyBits())];
    std::size_t populated = 0;
    for (std::uint64_t count : bins)
        populated += count > 0 ? 1 : 0;
    EXPECT_GE(populated, 3u);
}

TEST(GraphKernels, WeightEntropyKnobMovesEntropy)
{
    auto meanEntropy = [](const std::string &spec) {
        ResolvedWorkload w = resolveWorkload(spec, "", 0.05);
        MemoryTrace trace = capture(*w.source());
        obs::BranchTelemetryMap telemetry;
        for (const BranchRecord &r : trace.records())
            telemetry.record(r.pc, r.taken, r.timestamp);
        double sum = 0.0;
        for (std::uint64_t pc : telemetry.pcs())
            sum += telemetry.find(pc)->entropyBits();
        return sum / static_cast<double>(telemetry.pcs().size());
    };
    EXPECT_LT(meanEntropy("graph:bfs:powerlaw:wentropy=0.05"),
              meanEntropy("graph:bfs:powerlaw:wentropy=1.0"));
}

// ---------------------------------------------------------------------
// Determinism across read modes and range replay
// ---------------------------------------------------------------------

TEST(GraphKernels, MmapAndStreamReadsMatchTheLiveTrace)
{
    ResolvedWorkload w = resolveWorkload("graph:dfs:powerlaw", "", 0.05);
    std::unique_ptr<TraceSource> source = w.source();
    MemoryTrace live = capture(*source);

    const std::string path = tempPath("bwsa_graph_block_trace.bin");
    {
        store::BlockTraceWriter writer(path);
        source->replay(writer);
    }
    for (store::ReadMode mode :
         {store::ReadMode::Mmap, store::ReadMode::Stream}) {
        store::BlockTraceReader reader(path, mode);
        MemoryTrace loaded = capture(reader);
        EXPECT_TRUE(sameRecords(live, loaded));
    }
    std::remove(path.c_str());
}

TEST(GraphKernels, SegmentsReplayExactlyOnce)
{
    ResolvedWorkload w = resolveWorkload("graph:bfs:grid", "", 0.05);
    std::unique_ptr<TraceSource> source = w.source();
    MemoryTrace full = capture(*source);

    for (unsigned k : {2u, 5u}) {
        std::vector<TraceSegment> segments = source->segments(k);
        MemoryTrace stitched;
        for (const TraceSegment &segment : segments) {
            MemoryTrace part = capture(segment);
            for (const BranchRecord &r : part.records())
                stitched.onBranch(r);
        }
        EXPECT_TRUE(sameRecords(full, stitched)) << k;
    }
}

// ---------------------------------------------------------------------
// Predictability binner
// ---------------------------------------------------------------------

TEST(PredictabilityBinner, BinsAndLabels)
{
    obs::PredictabilityBinner binner;
    ASSERT_EQ(binner.binCount(), 4u);
    EXPECT_EQ(binner.binOf(0.0), 0u);
    EXPECT_EQ(binner.binOf(0.29), 0u);
    EXPECT_EQ(binner.binOf(0.3), 1u);
    EXPECT_EQ(binner.binOf(0.89), 2u);
    EXPECT_EQ(binner.binOf(0.9), 3u);
    EXPECT_EQ(binner.binOf(10.0), 3u);
    EXPECT_EQ(binner.label(0), "[0.00,0.30)");
    EXPECT_EQ(binner.label(3), "H>=0.90");
}

TEST(PredictabilityBinner, StatsArithmetic)
{
    obs::PredictabilityBinStats stats;
    stats.executed = 1000;
    stats.base_miss = 200;
    stats.alloc_miss = 50;
    stats.base_victims = 100;
    stats.alloc_victims = 10;
    EXPECT_DOUBLE_EQ(stats.baseMissPercent(), 20.0);
    EXPECT_DOUBLE_EQ(stats.allocMissPercent(), 5.0);
    EXPECT_DOUBLE_EQ(stats.payoffPercent(), 75.0);
    EXPECT_DOUBLE_EQ(stats.victimsEliminatedPercent(), 90.0);

    obs::PredictabilityBinStats other = stats;
    stats.merge(other);
    EXPECT_EQ(stats.executed, 2000u);
    EXPECT_DOUBLE_EQ(stats.payoffPercent(), 75.0);
}

TEST(PredictabilityBinnerDeath, RejectsBadEdges)
{
    EXPECT_EXIT(obs::PredictabilityBinner(std::vector<double>{}),
                ::testing::ExitedWithCode(1), "at least one edge");
    EXPECT_EXIT(obs::PredictabilityBinner({0.5, 0.4}),
                ::testing::ExitedWithCode(1), "strictly ascending");
}
