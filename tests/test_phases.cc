/**
 * @file
 * Tests for the online phase-boundary detector (obs/phase_detect.hh):
 *
 *  - *window algebra*: PhaseAccumulator's timestamp-aligned windows
 *    carry the right distinct counts and Jaccard similarities, and a
 *    mergeAppend() fold over ANY segmentation of a trace -- including
 *    segments that split a window, and empty segments -- is
 *    bit-identical to the serial accumulator (the shard contract);
 *  - *detector semantics*: threshold, re-arm hysteresis and the
 *    minimum-phase-length guard, each isolated on a synthetic signal;
 *  - *prefix stability*: feeding the detector windows block by block
 *    (the streaming service's access pattern) yields exactly the
 *    serial timeline, so sharded == streamed == serial for a sweep of
 *    thresholds x segment counts;
 *  - edge cases: empty trace, zero-churn trace (one phase),
 *    churn-every-window (guard engages), single-sample trace.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "obs/phase_detect.hh"
#include "trace/branch_record.hh"
#include "util/random.hh"

using namespace bwsa;
using namespace bwsa::obs;

namespace
{

/**
 * A trace with genuine phase structure: @p phase_count regions of
 * @p windows_each windows, each region drawing from its own PC pool
 * with @p drift of the pool replaced every window (0.0 = perfectly
 * stable inside a phase).  One record per timestamp unit, so windows
 * are full and deterministic.
 */
std::vector<BranchRecord>
makePhasedTrace(std::uint64_t seed, std::size_t phase_count,
                std::size_t windows_each, std::uint64_t interval,
                std::uint32_t pool = 24, double drift = 0.0)
{
    Pcg32 rng(seed);
    std::vector<BranchRecord> records;
    records.reserve(phase_count * windows_each * interval);
    std::uint64_t ts = 0;
    for (std::size_t p = 0; p < phase_count; ++p) {
        std::uint64_t base = 0x10000ull * (p + 1);
        for (std::size_t w = 0; w < windows_each; ++w) {
            if (drift > 0.0 && w != 0)
                base += static_cast<std::uint64_t>(drift * pool) * 8;
            for (std::uint64_t i = 0; i < interval; ++i) {
                BranchRecord r;
                r.pc = base + 8ull * rng.nextBounded(pool);
                r.timestamp = ts++;
                r.taken = rng.nextBool(0.5);
                records.push_back(r);
            }
        }
    }
    return records;
}

/** Serial accumulator over @p records, finished. */
PhaseAccumulator
serialAccumulate(const std::vector<BranchRecord> &records,
                 std::uint64_t interval)
{
    PhaseAccumulator accumulator(interval);
    for (const BranchRecord &r : records)
        accumulator.sample(r.pc, r.timestamp);
    accumulator.finish();
    return accumulator;
}

/**
 * Fold @p records through @p cuts: each segment gets a cold
 * accumulator, folded left-to-right with mergeAppend() -- the exact
 * shape of the sharded profiler's reduction.
 */
PhaseAccumulator
foldedAccumulate(const std::vector<BranchRecord> &records,
                 std::uint64_t interval,
                 const std::vector<std::size_t> &cuts)
{
    PhaseAccumulator folded(interval);
    std::size_t begin = 0;
    std::vector<std::size_t> ends(cuts);
    ends.push_back(records.size());
    for (std::size_t end : ends) {
        PhaseAccumulator segment(interval);
        for (std::size_t i = begin; i < end; ++i)
            segment.sample(records[i].pc, records[i].timestamp);
        folded.mergeAppend(segment);
        begin = end;
    }
    folded.finish();
    return folded;
}

/** Evenly spaced cut points splitting @p n records into @p k parts. */
std::vector<std::size_t>
evenCuts(std::size_t n, std::size_t k)
{
    std::vector<std::size_t> cuts;
    for (std::size_t i = 1; i < k; ++i)
        cuts.push_back(i * n / k);
    return cuts;
}

/** Hand-built window stat for detector-only tests. */
PhaseWindowStat
window(std::uint64_t start, double similarity, bool has_similarity)
{
    PhaseWindowStat stat;
    stat.start = start;
    stat.distinct = 10;
    stat.samples = 100;
    stat.similarity = similarity;
    stat.has_similarity = has_similarity;
    return stat;
}

/**
 * Drive a PhaseDetector the way the streaming service does: after
 * each block of records lands in the accumulator, feed it only the
 * windows that closed since the last block.
 */
PhaseTimeline
streamedTimeline(const std::vector<BranchRecord> &records,
                 std::uint64_t interval,
                 const PhaseDetectorConfig &config,
                 std::size_t block)
{
    PhaseAccumulator accumulator(interval);
    PhaseDetector detector(interval, config);
    std::size_t fed = 0;
    for (std::size_t off = 0; off < records.size(); off += block) {
        std::size_t n = std::min(block, records.size() - off);
        for (std::size_t i = off; i < off + n; ++i)
            accumulator.sample(records[i].pc,
                               records[i].timestamp);
        while (fed < accumulator.windows().size())
            detector.observe(accumulator.windows()[fed++]);
    }
    accumulator.finish();
    while (fed < accumulator.windows().size())
        detector.observe(accumulator.windows()[fed++]);
    return detector.timeline();
}

} // namespace

// ---------------------------------------------------------------
// PhaseAccumulator: window contents

TEST(PhaseAccumulator, WindowsAreTimestampAligned)
{
    PhaseAccumulator accumulator(100);
    // Window [0,100): {A, B}, 3 samples.
    accumulator.sample(0xA, 0);
    accumulator.sample(0xB, 10);
    accumulator.sample(0xA, 20);
    // Window [100,200): {B, C}.
    accumulator.sample(0xB, 100);
    accumulator.sample(0xC, 101);
    // Window [200,300): {B} -- 250 aligns down to 200.
    accumulator.sample(0xB, 250);
    accumulator.finish();

    const std::vector<PhaseWindowStat> &windows =
        accumulator.windows();
    ASSERT_EQ(windows.size(), 3u);
    EXPECT_EQ(accumulator.totalSamples(), 6u);

    EXPECT_EQ(windows[0].start, 0u);
    EXPECT_EQ(windows[0].distinct, 2u);
    EXPECT_EQ(windows[0].samples, 3u);
    EXPECT_FALSE(windows[0].has_similarity);

    EXPECT_EQ(windows[1].start, 100u);
    EXPECT_EQ(windows[1].distinct, 2u);
    EXPECT_TRUE(windows[1].has_similarity);
    // {B,C} vs {A,B}: |{B}| / |{A,B,C}|.
    EXPECT_DOUBLE_EQ(windows[1].similarity, 1.0 / 3.0);

    EXPECT_EQ(windows[2].start, 200u);
    EXPECT_EQ(windows[2].distinct, 1u);
    // {B} vs {B,C}: 1/2.
    EXPECT_DOUBLE_EQ(windows[2].similarity, 0.5);
}

TEST(PhaseAccumulator, GapsBetweenWindowsEmitNothing)
{
    PhaseAccumulator accumulator(10);
    accumulator.sample(0xA, 5);
    accumulator.sample(0xA, 95); // skips windows [10,90)
    accumulator.finish();

    ASSERT_EQ(accumulator.windows().size(), 2u);
    EXPECT_EQ(accumulator.windows()[0].start, 0u);
    EXPECT_EQ(accumulator.windows()[1].start, 90u);
    // Similarity still compares against the last *closed* window.
    EXPECT_TRUE(accumulator.windows()[1].has_similarity);
    EXPECT_DOUBLE_EQ(accumulator.windows()[1].similarity, 1.0);
}

TEST(PhaseAccumulator, EmptyTraceFinishesToNoWindows)
{
    PhaseAccumulator accumulator(100);
    accumulator.finish();
    accumulator.finish(); // idempotent
    EXPECT_TRUE(accumulator.finished());
    EXPECT_TRUE(accumulator.windows().empty());
    EXPECT_EQ(accumulator.totalSamples(), 0u);

    PhaseTimeline timeline = detectPhases(accumulator);
    EXPECT_TRUE(timeline.phases.empty());
    EXPECT_EQ(timeline.interval, 100u);
}

TEST(PhaseAccumulator, SingleSampleTraceIsOneWindow)
{
    PhaseAccumulator accumulator(100);
    accumulator.sample(0xA, 42);
    accumulator.finish();
    ASSERT_EQ(accumulator.windows().size(), 1u);
    EXPECT_EQ(accumulator.windows()[0].start, 0u);
    EXPECT_EQ(accumulator.windows()[0].distinct, 1u);
    EXPECT_FALSE(accumulator.windows()[0].has_similarity);

    PhaseTimeline timeline = detectPhases(accumulator);
    ASSERT_EQ(timeline.phases.size(), 1u);
    EXPECT_EQ(timeline.phases[0].window_count, 1u);
    EXPECT_EQ(timeline.phases[0].end_ts, 100u);
}

// ---------------------------------------------------------------
// PhaseAccumulator: merge algebra

TEST(PhaseAccumulator, MergeAppendMatchesSerialAcrossSegmentCounts)
{
    std::vector<BranchRecord> records =
        makePhasedTrace(7, 4, 6, 64, 24, 0.25);
    for (std::uint64_t interval : {std::uint64_t(1),
                                   std::uint64_t(64),
                                   std::uint64_t(257)}) {
        PhaseAccumulator serial =
            serialAccumulate(records, interval);
        for (std::size_t k : {std::size_t(1), std::size_t(2),
                              std::size_t(3), std::size_t(5),
                              std::size_t(8), std::size_t(13)}) {
            PhaseAccumulator folded = foldedAccumulate(
                records, interval, evenCuts(records.size(), k));
            EXPECT_TRUE(folded == serial)
                << "interval " << interval << ", " << k
                << " segments";
            EXPECT_EQ(folded.totalSamples(), serial.totalSamples());
        }
    }
}

TEST(PhaseAccumulator, MergeAppendRepairsStraddledWindows)
{
    // Cuts chosen to land *inside* windows (interval 100, one record
    // per timestamp): every alignment of the straddle union and the
    // first/second-window similarity repair gets exercised.
    std::vector<BranchRecord> records =
        makePhasedTrace(11, 3, 4, 100, 16, 0.0);
    PhaseAccumulator serial = serialAccumulate(records, 100);
    for (std::size_t cut : {std::size_t(1), std::size_t(50),
                            std::size_t(99), std::size_t(101),
                            std::size_t(150), std::size_t(250)}) {
        PhaseAccumulator folded =
            foldedAccumulate(records, 100, {cut});
        EXPECT_TRUE(folded == serial) << "cut at " << cut;
    }
    // Three-way splits with both cuts mid-window: the middle
    // segment both receives and donates a partial window.
    for (std::size_t first : {std::size_t(30), std::size_t(130)}) {
        PhaseAccumulator folded =
            foldedAccumulate(records, 100, {first, first + 115});
        EXPECT_TRUE(folded == serial)
            << "cuts at " << first << "," << first + 115;
    }
}

TEST(PhaseAccumulator, MergeAppendToleratesEmptySegments)
{
    std::vector<BranchRecord> records =
        makePhasedTrace(13, 2, 3, 50, 12, 0.0);
    PhaseAccumulator serial = serialAccumulate(records, 50);
    // Duplicate cut points produce zero-length segments; a leading
    // cut at 0 produces an empty first segment.
    PhaseAccumulator folded = foldedAccumulate(
        records, 50,
        {0, records.size() / 2, records.size() / 2,
         records.size()});
    EXPECT_TRUE(folded == serial);

    // Folding into a cold accumulator adopts the segment wholesale.
    PhaseAccumulator cold(50);
    PhaseAccumulator whole(50);
    for (const BranchRecord &r : records)
        whole.sample(r.pc, r.timestamp);
    cold.mergeAppend(whole);
    cold.finish();
    EXPECT_TRUE(cold == serial);
}

// ---------------------------------------------------------------
// PhaseDetector: semantics on synthetic window signals

TEST(PhaseDetector, ZeroChurnTraceIsOnePhase)
{
    PhaseDetectorConfig config;
    config.threshold = 0.4;
    config.min_windows = 4;
    PhaseDetector detector(100, config);
    EXPECT_FALSE(detector.observe(window(0, 1.0, false)));
    for (int i = 1; i < 40; ++i)
        EXPECT_FALSE(detector.observe(
            window(100ull * i, 1.0, true)));

    PhaseTimeline timeline = detector.timeline();
    ASSERT_EQ(timeline.phases.size(), 1u);
    EXPECT_EQ(timeline.phases[0].first_window, 0u);
    EXPECT_EQ(timeline.phases[0].window_count, 40u);
    EXPECT_EQ(timeline.phases[0].start_ts, 0u);
    EXPECT_EQ(timeline.phases[0].end_ts, 4000u);
    EXPECT_DOUBLE_EQ(timeline.phases[0].boundary_similarity, 1.0);
}

TEST(PhaseDetector, SustainedChurnReadsAsOneTransition)
{
    // Every window from #4 on is full turnover.  The first eligible
    // window opens a phase; hysteresis then keeps the detector
    // disarmed because similarity never recovers, so the storm is
    // one boundary, not one per window.
    PhaseDetectorConfig config;
    config.threshold = 0.4;
    config.hysteresis = 0.2;
    config.min_windows = 4;
    PhaseDetector detector(10, config);
    detector.observe(window(0, 1.0, false));
    for (int i = 1; i < 4; ++i)
        detector.observe(window(10ull * i, 1.0, true));
    int boundaries = 0;
    for (int i = 4; i < 24; ++i)
        boundaries += detector.observe(window(10ull * i, 0.0, true))
                          ? 1
                          : 0;
    EXPECT_EQ(boundaries, 1);
    EXPECT_EQ(detector.phaseCount(), 2u);
}

TEST(PhaseDetector, MinWindowsGuardBoundsPhaseRate)
{
    // Alternating calm (re-arms) and churn (fires when allowed)
    // windows: with min_windows=1 every churn window is a boundary;
    // with min_windows=4 only every other churn window is, because
    // the young phase is protected.
    auto run = [](std::uint64_t min_windows) {
        PhaseDetectorConfig config;
        config.threshold = 0.4;
        config.hysteresis = 0.2;
        config.min_windows = min_windows;
        PhaseDetector detector(10, config);
        detector.observe(window(0, 1.0, false));
        for (int i = 1; i <= 32; ++i)
            detector.observe(window(
                10ull * i, (i % 2 == 0) ? 0.0 : 0.9, true));
        return detector.timeline();
    };

    PhaseTimeline eager = run(1);
    PhaseTimeline guarded = run(4);
    EXPECT_EQ(eager.phases.size(), 17u);   // every even window fires
    EXPECT_EQ(guarded.phases.size(), 9u);  // every 4th window fires
    // Every phase the guard closed is at least min_windows long.
    for (std::size_t i = 0; i + 1 < guarded.phases.size(); ++i)
        EXPECT_GE(guarded.phases[i].window_count, 4u) << "phase " << i;
}

TEST(PhaseDetector, HysteresisGatesRearm)
{
    // After a boundary, similarity hovering between threshold and
    // threshold+hysteresis must NOT re-arm the detector; crossing
    // threshold+hysteresis must.
    PhaseDetectorConfig config;
    config.threshold = 0.4;
    config.hysteresis = 0.2;
    config.min_windows = 1;
    PhaseDetector detector(10, config);
    detector.observe(window(0, 1.0, false));
    EXPECT_TRUE(detector.observe(window(10, 0.1, true)));  // fires
    EXPECT_FALSE(detector.observe(window(20, 0.5, true))); // limbo
    EXPECT_FALSE(detector.observe(window(30, 0.1, true))); // disarmed
    EXPECT_FALSE(detector.observe(window(40, 0.7, true))); // re-arms
    EXPECT_TRUE(detector.observe(window(50, 0.1, true)));  // fires
    EXPECT_EQ(detector.phaseCount(), 3u);
}

TEST(PhaseDetector, TimelineInvariantsHold)
{
    std::vector<BranchRecord> records =
        makePhasedTrace(17, 5, 7, 64, 24, 0.3);
    PhaseAccumulator accumulator = serialAccumulate(records, 64);
    PhaseDetectorConfig config;
    config.threshold = 0.5;
    config.min_windows = 3;
    PhaseTimeline timeline = detectPhases(accumulator, config);

    ASSERT_FALSE(timeline.phases.empty());
    const std::vector<PhaseWindowStat> &windows =
        accumulator.windows();
    std::uint64_t next_window = 0;
    for (std::size_t i = 0; i < timeline.phases.size(); ++i) {
        const Phase &phase = timeline.phases[i];
        // Phases tile the window sequence with no gaps or overlap.
        EXPECT_EQ(phase.first_window, next_window);
        EXPECT_GE(phase.window_count, 1u);
        next_window += phase.window_count;
        // Timestamp bounds come straight from the member windows.
        EXPECT_EQ(phase.start_ts, windows[phase.first_window].start);
        EXPECT_EQ(phase.end_ts,
                  windows[phase.first_window + phase.window_count - 1]
                          .start +
                      64);
        // Interior phases respect the minimum length guard.
        if (i + 1 < timeline.phases.size()) {
            EXPECT_GE(phase.window_count, config.min_windows);
        }
        // Boundary similarity is below threshold for every phase
        // after the first.
        if (i != 0) {
            EXPECT_LT(phase.boundary_similarity, config.threshold);
        }
    }
    EXPECT_EQ(next_window, windows.size());
}

// ---------------------------------------------------------------
// Sharded == streamed == serial

TEST(PhaseTimelines, ShardedAndStreamedMatchSerialAcrossSweep)
{
    std::vector<BranchRecord> records =
        makePhasedTrace(23, 4, 8, 64, 24, 0.2);
    const std::uint64_t interval = 64;
    PhaseAccumulator serial = serialAccumulate(records, interval);

    for (double threshold : {0.15, 0.4, 0.7}) {
        for (std::uint64_t min_windows :
             {std::uint64_t(1), std::uint64_t(4)}) {
            PhaseDetectorConfig config;
            config.threshold = threshold;
            config.hysteresis = 0.2;
            config.min_windows = min_windows;
            PhaseTimeline expected = detectPhases(serial, config);

            for (std::size_t k : {std::size_t(1), std::size_t(2),
                                  std::size_t(3), std::size_t(5),
                                  std::size_t(8)}) {
                // Sharded: fold k cold accumulators, then detect.
                PhaseAccumulator folded = foldedAccumulate(
                    records, interval,
                    evenCuts(records.size(), k));
                EXPECT_EQ(detectPhases(folded, config), expected)
                    << "sharded, threshold " << threshold
                    << ", min_windows " << min_windows << ", " << k
                    << " shards";

                // Streamed: observe windows as blocks land.
                std::size_t block =
                    (records.size() + k - 1) / k;
                EXPECT_EQ(streamedTimeline(records, interval,
                                           config, block),
                          expected)
                    << "streamed, threshold " << threshold
                    << ", min_windows " << min_windows
                    << ", block " << block;
            }
            // Degenerate partitions: record-at-a-time streaming and
            // a deliberately window-misaligned block size.
            EXPECT_EQ(
                streamedTimeline(records, interval, config, 1),
                expected);
            EXPECT_EQ(
                streamedTimeline(records, interval, config, 97),
                expected);
        }
    }
}

TEST(PhaseTimelines, StreamedPrefixesAreStable)
{
    // A closed phase never changes as more windows arrive: compare
    // the detector's timeline after every block against the final
    // one -- all but the last (open) phase must already be final.
    std::vector<BranchRecord> records =
        makePhasedTrace(29, 3, 6, 50, 16, 0.0);
    PhaseAccumulator accumulator(50);
    PhaseDetector detector(50);
    PhaseTimeline final_timeline =
        detectPhases(serialAccumulate(records, 50));

    std::size_t fed = 0;
    for (std::size_t off = 0; off < records.size(); off += 200) {
        std::size_t n = std::min(std::size_t(200),
                                 records.size() - off);
        for (std::size_t i = off; i < off + n; ++i)
            accumulator.sample(records[i].pc,
                               records[i].timestamp);
        while (fed < accumulator.windows().size())
            detector.observe(accumulator.windows()[fed++]);

        PhaseTimeline partial = detector.timeline();
        ASSERT_LE(partial.phases.size(),
                  final_timeline.phases.size());
        for (std::size_t p = 0; p + 1 < partial.phases.size(); ++p)
            EXPECT_EQ(partial.phases[p], final_timeline.phases[p])
                << "closed phase " << p << " changed after "
                << off + n << " records";
    }
    accumulator.finish();
    while (fed < accumulator.windows().size())
        detector.observe(accumulator.windows()[fed++]);
    EXPECT_EQ(detector.timeline(), final_timeline);
}
