/**
 * @file
 * End-to-end determinism check for the parallel bench harness: the
 * Figure 3 table built with --threads=1 must be byte-identical to the
 * same table built with a multi-threaded sweep (the acceptance
 * criterion for the sweep engine), and likewise for Figure 4's
 * classification variant.
 */

#include <gtest/gtest.h>

#include "bench_common.hh"

using namespace bwsa;
using namespace bwsa::bench;

namespace
{

BenchOptions
smallOptions(unsigned threads)
{
    BenchOptions options;
    options.scale = 0.02;
    options.benchmarks = {"compress", "li", "pgp"};
    options.threads = threads;
    return options;
}

} // namespace

TEST(BenchSweep, Fig3TableIdenticalAcrossThreadCounts)
{
    std::string serial =
        buildAllocationTable(smallOptions(1), false).render();
    std::string parallel =
        buildAllocationTable(smallOptions(4), false).render();
    EXPECT_EQ(parallel, serial);
    // Sanity: the table actually has the benchmark rows.
    EXPECT_NE(serial.find("compress"), std::string::npos);
    EXPECT_NE(serial.find("average"), std::string::npos);
}

TEST(BenchSweep, Fig4TableIdenticalAcrossThreadCounts)
{
    std::string serial =
        buildAllocationTable(smallOptions(1), true).render();
    std::string parallel =
        buildAllocationTable(smallOptions(3), true).render();
    EXPECT_EQ(parallel, serial);
}

TEST(BenchSweep, Table2IdenticalAcrossShardAndThreadCounts)
{
    // The Table 2 acceptance criterion for the sharded profiler: the
    // working-set table from a sharded multi-threaded run must be
    // byte-identical to the serial single-shard run, on every preset
    // in the sweep.
    std::string serial = buildWorkingSetTable(smallOptions(1)).render();

    BenchOptions sharded_options = smallOptions(4);
    sharded_options.shards = 4;
    std::string sharded =
        buildWorkingSetTable(sharded_options).render();
    EXPECT_EQ(sharded, serial);

    BenchOptions uneven_options = smallOptions(2);
    uneven_options.shards = 7;
    EXPECT_EQ(buildWorkingSetTable(uneven_options).render(), serial);

    EXPECT_NE(serial.find("compress"), std::string::npos);
}

TEST(BenchSweep, RepeatedParallelRunsAreStable)
{
    // Two parallel runs with different worker counts agree too: the
    // result depends only on the inputs, never on the schedule.
    std::string a = buildAllocationTable(smallOptions(2), false).render();
    std::string b = buildAllocationTable(smallOptions(4), false).render();
    EXPECT_EQ(a, b);
}
