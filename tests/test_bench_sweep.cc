/**
 * @file
 * End-to-end checks for the bench harness: parallel-sweep determinism
 * (Figure 3/4 and Table 2 tables byte-identical across thread and
 * shard counts), the --quiet/--progress CLI contract, and the
 * --timeseries/--interference observability paths.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_common.hh"
#include "obs/progress.hh"
#include "obs/run_report.hh"
#include "obs/timeseries.hh"
#include "util/logging.hh"

using namespace bwsa;
using namespace bwsa::bench;

namespace
{

BenchOptions
smallOptions(unsigned threads)
{
    BenchOptions options;
    options.scale = 0.02;
    options.benchmarks = {"compress", "li", "pgp"};
    options.threads = threads;
    return options;
}

} // namespace

TEST(BenchSweep, Fig3TableIdenticalAcrossThreadCounts)
{
    std::string serial =
        buildAllocationTable(smallOptions(1), false).render();
    std::string parallel =
        buildAllocationTable(smallOptions(4), false).render();
    EXPECT_EQ(parallel, serial);
    // Sanity: the table actually has the benchmark rows.
    EXPECT_NE(serial.find("compress"), std::string::npos);
    EXPECT_NE(serial.find("average"), std::string::npos);
}

TEST(BenchSweep, Fig4TableIdenticalAcrossThreadCounts)
{
    std::string serial =
        buildAllocationTable(smallOptions(1), true).render();
    std::string parallel =
        buildAllocationTable(smallOptions(3), true).render();
    EXPECT_EQ(parallel, serial);
}

TEST(BenchSweep, Table2IdenticalAcrossShardAndThreadCounts)
{
    // The Table 2 acceptance criterion for the sharded profiler: the
    // working-set table from a sharded multi-threaded run must be
    // byte-identical to the serial single-shard run, on every preset
    // in the sweep.
    std::string serial = buildWorkingSetTable(smallOptions(1)).render();

    BenchOptions sharded_options = smallOptions(4);
    sharded_options.shards = 4;
    std::string sharded =
        buildWorkingSetTable(sharded_options).render();
    EXPECT_EQ(sharded, serial);

    BenchOptions uneven_options = smallOptions(2);
    uneven_options.shards = 7;
    EXPECT_EQ(buildWorkingSetTable(uneven_options).render(), serial);

    EXPECT_NE(serial.find("compress"), std::string::npos);
}

TEST(BenchSweep, RepeatedParallelRunsAreStable)
{
    // Two parallel runs with different worker counts agree too: the
    // result depends only on the inputs, never on the schedule.
    std::string a = buildAllocationTable(smallOptions(2), false).render();
    std::string b = buildAllocationTable(smallOptions(4), false).render();
    EXPECT_EQ(a, b);
}

TEST(BenchSweep, InterferenceAndTimeseriesPopulateReport)
{
    // The --timeseries --interference acceptance path: a Figure 3 run
    // produces the destructive-aliasing table, per-benchmark windowed
    // series, and a populated "interference" report section.
    auto &registry = obs::TimeSeriesRegistry::global();
    registry.clear();
    registry.configureDefaults(4096);
    registry.setEnabled(true);
    auto &report = obs::RunReport::global();
    report.begin("test_bench_sweep");

    BenchOptions options = smallOptions(2);
    options.benchmarks = {"compress", "li"};
    options.timeseries = true;
    options.interference = true;
    AllocationTables tables = buildAllocationTables(options, false);

    ASSERT_TRUE(tables.has_aliasing);
    std::string aliasing = tables.aliasing.render();
    EXPECT_NE(aliasing.find("compress"), std::string::npos);
    EXPECT_NE(aliasing.find("li"), std::string::npos);

    // The interleave pass published the working-set series under each
    // benchmark's scope, and the simulator a miss-rate series per
    // predictor.
    EXPECT_NE(registry.find("compress/working_set/size"), nullptr);
    EXPECT_NE(registry.find("li/working_set/jaccard"), nullptr);
    obs::JsonValue series = registry.toJson();
    bool found_miss_rate = false;
    for (std::size_t i = 0; i < series.size(); ++i) {
        const std::string &name =
            series.at(i).find("name")->asString();
        if (name.rfind("compress/", 0) == 0 &&
            name.size() >= 10 &&
            name.compare(name.size() - 10, 10, "/miss_rate") == 0)
            found_miss_rate = true;
    }
    EXPECT_TRUE(found_miss_rate);

    // The v2 report carries both new sections, populated: one
    // interference entry per probed predictor per benchmark.
    obs::JsonValue doc = report.build();
    ASSERT_NE(doc.find("timeseries"), nullptr);
    EXPECT_GT(doc.find("timeseries")->size(), 0u);
    ASSERT_NE(doc.find("interference"), nullptr);
    EXPECT_EQ(doc.find("interference")->size(), 4u);
    const obs::JsonValue &entry = doc.find("interference")->at(0);
    EXPECT_NE(entry.find("destructive"), nullptr);
    EXPECT_NE(entry.find("top_entries"), nullptr);

    registry.setEnabled(false);
    registry.clear();
}

// --- CLI contract ---------------------------------------------------

namespace
{

/** parseBenchOptions against a throwaway argv. */
BenchOptions
parseArgs(std::vector<std::string> args)
{
    std::vector<char *> argv;
    argv.reserve(args.size());
    for (std::string &arg : args)
        argv.push_back(arg.data());
    int argc = static_cast<int>(argv.size());
    return parseBenchOptions(argc, argv.data(), "test_bench");
}

} // namespace

TEST(BenchCli, QuietSuppressesProgressHeartbeatEntirely)
{
    // --quiet wins over --progress: the heartbeat thread never
    // starts, so neither beats nor the final "progress: done" flush
    // reach stderr.
    LogLevel saved = logLevel();
    testing::internal::CaptureStderr();
    BenchOptions options =
        parseArgs({"bench", "--quiet", "--progress=0.1"});
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    EXPECT_DOUBLE_EQ(options.progress_sec, 0.1);
    EXPECT_FALSE(obs::ProgressMeter::global().running());
    finishBench(options);
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");

    // Without --quiet the same spelling does start the heartbeat and
    // flushes on stop -- the contrast that makes the test meaningful.
    setLogLevel(LogLevel::Normal);
    testing::internal::CaptureStderr();
    options = parseArgs({"bench", "--progress=0.1"});
    EXPECT_TRUE(obs::ProgressMeter::global().running());
    finishBench(options);
    EXPECT_FALSE(obs::ProgressMeter::global().running());
    EXPECT_NE(testing::internal::GetCapturedStderr().find(
                  "progress: done"),
              std::string::npos);
    setLogLevel(saved);
}
