/**
 * @file
 * Tests for the profiling layer: the time-stamp interleave analysis
 * of Section 4.1 against hand-worked examples, window eviction, and
 * the conflict graph's pruning / merging / serialization.
 */

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "profile/conflict_graph.hh"
#include "profile/interleave.hh"
#include "trace/trace.hh"
#include "util/random.hh"

using namespace bwsa;

namespace
{

/** Emit a sequence of branch pcs (taken=false) as a trace. */
MemoryTrace
traceOf(const std::vector<BranchPc> &pcs)
{
    MemoryTrace trace;
    std::uint64_t ts = 0;
    for (BranchPc pc : pcs) {
        ts += 5;
        trace.onBranch({pc, ts, false});
    }
    return trace;
}

constexpr BranchPc A = 0x1000, B = 0x1008, C = 0x1010, D = 0x1018;

/** Profile a pc sequence with the given window. */
ConflictGraph
profileSeq(const std::vector<BranchPc> &pcs, std::size_t window = 0)
{
    InterleaveConfig config;
    config.max_window = window;
    return profileTrace(traceOf(pcs), config);
}

std::uint64_t
edge(const ConflictGraph &g, BranchPc a, BranchPc b)
{
    NodeId na = g.findNode(a), nb = g.findNode(b);
    if (na == invalid_node || nb == invalid_node)
        return 0;
    return g.interleaveCount(na, nb);
}

} // namespace

// ------------------------------------------------- interleave semantics

TEST(Interleave, PaperFigure1Example)
{
    // The paper's example: A B C A -- re-executing A finds B and C
    // with newer time stamps, recording A-B and A-C interleavings.
    ConflictGraph g = profileSeq({A, B, C, A});
    EXPECT_EQ(g.nodeCount(), 3u);
    EXPECT_EQ(edge(g, A, B), 1u);
    EXPECT_EQ(edge(g, A, C), 1u);
    EXPECT_EQ(edge(g, B, C), 0u); // B never re-executed
}

TEST(Interleave, AlternationCountsEachReExecution)
{
    // A B A B A: A's 2nd instance sees B (A-B +1); B's 2nd sees A
    // (+1); A's 3rd sees B (+1) = 3.
    ConflictGraph g = profileSeq({A, B, A, B, A});
    EXPECT_EQ(edge(g, A, B), 3u);
}

TEST(Interleave, RepeatedBranchAloneHasNoEdges)
{
    ConflictGraph g = profileSeq({A, A, A, A});
    EXPECT_EQ(g.nodeCount(), 1u);
    EXPECT_EQ(g.edgeCount(), 0u);
    EXPECT_EQ(g.node(0).executed, 4u);
}

TEST(Interleave, OnlyBranchesSinceLastInstanceCount)
{
    // A B A C A: A's 2nd sees {B}; A's 3rd sees {C} only -- B ran
    // before A's 2nd instance, not after.
    ConflictGraph g = profileSeq({A, B, A, C, A});
    EXPECT_EQ(edge(g, A, B), 1u);
    EXPECT_EQ(edge(g, A, C), 1u);
    EXPECT_EQ(edge(g, B, C), 0u);
}

TEST(Interleave, LoopBodyFormsCompleteSubgraph)
{
    // (A B C) x 10: in each of the 9 repeat cycles every pair is
    // recorded twice -- once from each endpoint's re-execution (the
    // paper counts every instance of interleaving between the pair).
    std::vector<BranchPc> pcs;
    for (int i = 0; i < 10; ++i) {
        pcs.push_back(A);
        pcs.push_back(B);
        pcs.push_back(C);
    }
    ConflictGraph g = profileSeq(pcs);
    EXPECT_EQ(edge(g, A, B), 18u);
    EXPECT_EQ(edge(g, B, C), 18u);
    EXPECT_EQ(edge(g, A, C), 18u);
}

TEST(Interleave, ExecutionAndTakenCountsRecorded)
{
    MemoryTrace trace;
    trace.onBranch({A, 5, true});
    trace.onBranch({A, 10, false});
    trace.onBranch({A, 15, true});
    ConflictGraph g = profileTrace(trace);
    const ConflictNode &node = g.node(g.findNode(A));
    EXPECT_EQ(node.executed, 3u);
    EXPECT_EQ(node.taken, 2u);
    EXPECT_NEAR(node.takenRate(), 2.0 / 3.0, 1e-12);
    EXPECT_EQ(g.totalExecutions(), 3u);
}

TEST(Interleave, WindowEvictionSuppressesLongRangePairs)
{
    // Window of 2: when A re-executes after B and C, A has already
    // been evicted, so no pair is recorded.
    InterleaveConfig config;
    config.max_window = 2;
    ConflictGraph g;
    InterleaveTracker tracker(g, config);
    traceOf({A, B, C, A}).replay(tracker);
    EXPECT_EQ(g.edgeCount(), 0u);
    EXPECT_EQ(tracker.evictedReentries(), 1u);
}

TEST(Interleave, UnboundedWindowMatchesLargeWindow)
{
    std::vector<BranchPc> pcs;
    Pcg32 rng(3);
    for (int i = 0; i < 5000; ++i)
        pcs.push_back(0x1000 + 8ull * rng.nextBounded(40));
    ConflictGraph g0 = profileSeq(pcs, 0);    // unbounded
    ConflictGraph g1 = profileSeq(pcs, 4096); // way beyond 40
    ASSERT_EQ(g0.edgeCount(), g1.edgeCount());
    for (const auto &[key, count] : g0.edges()) {
        auto [a, b] = ConflictGraph::unpackEdge(key);
        ASSERT_EQ(g1.interleaveCount(a, b), count);
    }
}

TEST(Interleave, PairIncrementsAreCounted)
{
    ConflictGraph g;
    InterleaveTracker tracker(g);
    traceOf({A, B, C, A}).replay(tracker);
    EXPECT_EQ(tracker.pairIncrements(), 2u);
    EXPECT_EQ(tracker.windowSize(), 3u);
}

// --------------------------------------------------------- conflict graph

TEST(ConflictGraph, NodeIdentityByPc)
{
    ConflictGraph g;
    NodeId a1 = g.addOrGetNode(A);
    NodeId a2 = g.addOrGetNode(A);
    NodeId b = g.addOrGetNode(B);
    EXPECT_EQ(a1, a2);
    EXPECT_NE(a1, b);
    EXPECT_EQ(g.findNode(A), a1);
    EXPECT_EQ(g.findNode(0xdead), invalid_node);
}

TEST(ConflictGraph, EdgePackingRoundTrips)
{
    ConflictGraph g;
    NodeId a = g.addOrGetNode(A);
    NodeId b = g.addOrGetNode(B);
    g.addInterleave(b, a, 7); // order-insensitive
    EXPECT_EQ(g.interleaveCount(a, b), 7u);
    EXPECT_EQ(g.interleaveCount(b, a), 7u);

    for (const auto &[key, count] : g.edges()) {
        auto [x, y] = ConflictGraph::unpackEdge(key);
        EXPECT_EQ(std::min(x, y), std::min(a, b));
        EXPECT_EQ(std::max(x, y), std::max(a, b));
        EXPECT_EQ(count, 7u);
    }
}

TEST(ConflictGraphDeath, SelfEdgePanics)
{
    ConflictGraph g;
    NodeId a = g.addOrGetNode(A);
    EXPECT_DEATH(g.addInterleave(a, a), "self edge");
}

TEST(ConflictGraph, PruneDropsWeakEdges)
{
    ConflictGraph g;
    NodeId a = g.addOrGetNode(A);
    NodeId b = g.addOrGetNode(B);
    NodeId c = g.addOrGetNode(C);
    g.addInterleave(a, b, 1000);
    g.addInterleave(b, c, 50);

    ConflictGraph pruned = g.pruned(100);
    EXPECT_EQ(pruned.nodeCount(), 3u); // nodes survive
    EXPECT_EQ(pruned.edgeCount(), 1u);
    EXPECT_EQ(pruned.interleaveCount(a, b), 1000u);
    EXPECT_EQ(pruned.interleaveCount(b, c), 0u);

    // Threshold-boundary edge survives (>= semantics).
    ConflictGraph boundary = g.pruned(50);
    EXPECT_EQ(boundary.edgeCount(), 2u);
}

TEST(ConflictGraph, MergeAccumulatesAcrossInputs)
{
    // Section 5.2's cumulative profiles: counts add up, ids remap by
    // PC even when insertion order differs.
    ConflictGraph g1;
    {
        NodeId a = g1.addOrGetNode(A), b = g1.addOrGetNode(B);
        g1.recordExecution(a, true);
        g1.recordExecution(b, false);
        g1.addInterleave(a, b, 10);
    }
    ConflictGraph g2;
    {
        NodeId c = g2.addOrGetNode(C), a = g2.addOrGetNode(A);
        NodeId b = g2.addOrGetNode(B);
        g2.recordExecution(a, false);
        g2.recordExecution(c, true);
        g2.addInterleave(a, b, 5);
        g2.addInterleave(a, c, 200);
    }
    g1.mergeFrom(g2);
    EXPECT_EQ(g1.nodeCount(), 3u);
    EXPECT_EQ(edge(g1, A, B), 15u);
    EXPECT_EQ(edge(g1, A, C), 200u);
    EXPECT_EQ(g1.node(g1.findNode(A)).executed, 2u);
    EXPECT_EQ(g1.node(g1.findNode(A)).taken, 1u);
    EXPECT_EQ(g1.totalExecutions(), 4u);
}

TEST(ConflictGraph, AdjacencyMatchesEdges)
{
    ConflictGraph g = profileSeq({A, B, C, A, B, C, A, D, A});
    auto adj = g.adjacency();
    ASSERT_EQ(adj.size(), g.nodeCount());
    std::size_t total = 0;
    for (NodeId v = 0; v < adj.size(); ++v) {
        for (auto [u, w] : adj[v]) {
            EXPECT_EQ(g.interleaveCount(v, u), w);
            ++total;
        }
        // sorted by neighbour id
        for (std::size_t i = 1; i < adj[v].size(); ++i)
            EXPECT_LT(adj[v][i - 1].first, adj[v][i].first);
    }
    EXPECT_EQ(total, 2 * g.edgeCount());
}

TEST(ConflictGraph, SaveLoadRoundTrip)
{
    ConflictGraph g = profileSeq({A, B, C, A, B, C, A, D, B});
    std::string path = (std::filesystem::temp_directory_path() /
                        "bwsa_test_graph.bwsg")
                           .string();
    g.save(path);
    ConflictGraph loaded = ConflictGraph::load(path);

    EXPECT_EQ(loaded.nodeCount(), g.nodeCount());
    EXPECT_EQ(loaded.edgeCount(), g.edgeCount());
    EXPECT_EQ(loaded.totalExecutions(), g.totalExecutions());
    for (NodeId v = 0; v < g.nodeCount(); ++v) {
        const ConflictNode &orig = g.node(v);
        NodeId lv = loaded.findNode(orig.pc);
        ASSERT_NE(lv, invalid_node);
        EXPECT_EQ(loaded.node(lv).executed, orig.executed);
        EXPECT_EQ(loaded.node(lv).taken, orig.taken);
    }
    for (const auto &[key, count] : g.edges()) {
        auto [a, b] = ConflictGraph::unpackEdge(key);
        NodeId la = loaded.findNode(g.node(a).pc);
        NodeId lb = loaded.findNode(g.node(b).pc);
        EXPECT_EQ(loaded.interleaveCount(la, lb), count);
    }
    std::filesystem::remove(path);
}

TEST(ConflictGraphDeath, LoadRejectsBadMagic)
{
    std::string path = (std::filesystem::temp_directory_path() /
                        "bwsa_test_badmagic.bwsg")
                           .string();
    {
        std::ofstream out(path);
        out << "WRONG v9\n";
    }
    EXPECT_EXIT(ConflictGraph::load(path),
                ::testing::ExitedWithCode(1), "not a BWSG");
    std::filesystem::remove(path);
}

// ------------------------------------------------- multi-replay tracking

TEST(Interleave, TrackerAccumulatesAcrossReplays)
{
    // Two replays into the same tracker double every count (the
    // flush at onEnd merges into the same graph).
    ConflictGraph g;
    InterleaveTracker tracker(g);
    MemoryTrace trace = traceOf({A, B, A, B, A});
    trace.replay(tracker);
    std::uint64_t first = edge(g, A, B);
    trace.replay(tracker);
    EXPECT_EQ(edge(g, A, B), 2 * first + 1);
    // (+1: the window persists across replays, so the second replay's
    // first A sees the B left over from the first replay.)
}
