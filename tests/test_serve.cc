/**
 * @file
 * Tests of the online profiling service (src/serve) and the
 * streaming ProfileSession underneath it (src/core/streaming.cc):
 *
 *  - *exactness*: a streamed session's artifact -- after any block
 *    partitioning, at any mid-stream snapshot, with bounded windows,
 *    and across spill/merge epochs -- serializes byte-identically to
 *    a batch ProfileSession over the same records, and produces the
 *    same allocation map;
 *  - *protocol robustness*: truncated frames, bad magic, oversized
 *    length prefixes and version mismatches poison only the stream;
 *    payload CRC damage, unknown/duplicate sessions, undecodable
 *    payloads and out-of-order timestamps are answered with typed
 *    error frames and the service keeps serving;
 *  - *isolation*: concurrent tenants streaming interleaved sessions
 *    through one service never contaminate each other's graphs;
 *  - the latency histograms fed by the service have sane quantiles.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define BWSA_TEST_POSIX 1
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "core/pipeline.hh"
#include "exec/thread_pool.hh"
#include "obs/phase_detect.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "store/artifact_cache.hh"
#include "store/profile_artifact.hh"
#include "store/wire.hh"
#include "trace/varint.hh"
#include "util/random.hh"

using namespace bwsa;

namespace
{

/** Random trace records with strictly ascending timestamps. */
std::vector<BranchRecord>
makeRecords(std::uint64_t seed, std::size_t count,
            std::uint64_t distinct = 200)
{
    Pcg32 rng(seed);
    std::vector<BranchRecord> records;
    records.reserve(count);
    std::uint64_t ts = 0;
    for (std::size_t i = 0; i < count; ++i) {
        BranchRecord r;
        r.pc = 0x400000 + 8ull * rng.nextBounded(
                              static_cast<std::uint32_t>(distinct));
        ts += 1 + rng.nextBounded(16);
        r.timestamp = ts;
        r.taken = rng.nextBool(0.6);
        records.push_back(r);
    }
    return records;
}

/** Streaming-legal pipeline config (full coverage, single pass). */
PipelineConfig
streamingConfig(std::size_t max_window = 0)
{
    PipelineConfig config;
    config.coverage = 1.0;
    config.max_static = 0;
    if (max_window != 0)
        config.interleave.max_window = max_window;
    return config;
}

/** Batch ProfileSession artifact over @p records, serialized. */
std::string
batchBytes(const std::vector<BranchRecord> &records,
           const PipelineConfig &config)
{
    AllocationPipeline pipeline(config);
    ProfileSession session(pipeline);
    MemoryTrace trace;
    for (const BranchRecord &r : records)
        trace.onBranch(r);
    trace.onEnd();
    session.addStats(trace);
    session.commit();
    session.addInterleave(trace);
    session.finish();
    store::ProfileArtifact artifact{pipeline.lastStats(),
                                    pipeline.lastSelection(),
                                    pipeline.graph()};
    return store::serializeProfileArtifact(artifact);
}

/** Stream @p records in @p block_records chunks; serialized finish. */
std::string
streamedBytes(const std::vector<BranchRecord> &records,
              StreamingSessionConfig config,
              std::size_t block_records)
{
    StreamingProfileSession session(std::move(config));
    for (std::size_t off = 0; off < records.size();
         off += block_records) {
        std::size_t n =
            std::min(block_records, records.size() - off);
        session.appendBlock(records.data() + off, n);
    }
    return store::serializeProfileArtifact(session.finish());
}

std::filesystem::path
tempDir(const std::string &tag)
{
    auto dir = std::filesystem::temp_directory_path() /
               ("bwsa_serve_test_" + tag);
    std::filesystem::remove_all(dir);
    return dir;
}

} // namespace

// ---------------------------------------------------------------
// Streaming exactness

TEST(StreamingSession, ByteIdenticalAcrossBlockSizes)
{
    std::vector<BranchRecord> records = makeRecords(7, 5000);
    std::string expected = batchBytes(records, streamingConfig());
    for (std::size_t block : {std::size_t(1), std::size_t(7),
                              std::size_t(64), std::size_t(999),
                              records.size()}) {
        StreamingSessionConfig config;
        config.pipeline = streamingConfig();
        EXPECT_EQ(streamedBytes(records, config, block), expected)
            << "block size " << block;
    }
}

TEST(StreamingSession, ByteIdenticalWithBoundedWindow)
{
    std::vector<BranchRecord> records = makeRecords(11, 4000, 500);
    for (std::size_t window : {std::size_t(2), std::size_t(5),
                               std::size_t(16)}) {
        std::string expected =
            batchBytes(records, streamingConfig(window));
        StreamingSessionConfig config;
        config.pipeline = streamingConfig(window);
        EXPECT_EQ(streamedBytes(records, config, 123), expected)
            << "window " << window;
    }
}

TEST(StreamingSession, MidStreamSnapshotEqualsBatchPrefix)
{
    std::vector<BranchRecord> records = makeRecords(13, 3000);
    StreamingSessionConfig config;
    config.pipeline = streamingConfig();
    StreamingProfileSession session(config);

    const std::size_t block = 700;
    std::size_t streamed = 0;
    while (streamed < records.size()) {
        std::size_t n = std::min(block, records.size() - streamed);
        session.appendBlock(records.data() + streamed, n);
        streamed += n;

        std::vector<BranchRecord> prefix(records.begin(),
                                         records.begin() + streamed);
        EXPECT_EQ(store::serializeProfileArtifact(session.snapshot()),
                  batchBytes(prefix, streamingConfig()))
            << "prefix of " << streamed << " records";
    }
    EXPECT_EQ(session.recordCount(), records.size());
}

TEST(StreamingSession, AllocationMapMatchesBatch)
{
    std::vector<BranchRecord> records = makeRecords(17, 6000, 600);
    PipelineConfig pipeline_config = streamingConfig();

    AllocationPipeline pipeline(pipeline_config);
    ProfileSession batch(pipeline);
    MemoryTrace trace;
    for (const BranchRecord &r : records)
        trace.onBranch(r);
    trace.onEnd();
    batch.addStats(trace);
    batch.commit();
    batch.addInterleave(trace);
    batch.finish();
    AllocationResult expected = pipeline.allocate(128);

    StreamingSessionConfig config;
    config.pipeline = pipeline_config;
    StreamingProfileSession session(config);
    session.appendBlock(records);
    AllocationResult got = session.allocate(128);

    EXPECT_EQ(got.assignment, expected.assignment);
    EXPECT_EQ(got.residual_conflict, expected.residual_conflict);
    EXPECT_EQ(got.shared_nodes, expected.shared_nodes);
}

TEST(StreamingSession, SpillingPreservesExactness)
{
    std::vector<BranchRecord> records = makeRecords(19, 8000, 800);
    std::string expected = batchBytes(records, streamingConfig());

    auto dir = tempDir("spill");
    store::ArtifactCache cache(dir.string());

    StreamingSessionConfig config;
    config.pipeline = streamingConfig();
    config.max_resident_bytes = 16 * 1024; // force frequent spills
    config.spill_cache = &cache;
    config.spill_scope = "t0/s0";

    StreamingProfileSession session(config);
    for (std::size_t off = 0; off < records.size(); off += 512) {
        std::size_t n = std::min(std::size_t(512),
                                 records.size() - off);
        session.appendBlock(records.data() + off, n);
    }
    EXPECT_GT(session.spilledEpochs(), 0u);
    EXPECT_EQ(store::serializeProfileArtifact(session.finish()),
              expected);
    // finish() dropped the spilled epochs from the cache.
    EXPECT_EQ(cache.entryCount(), 0u);
    std::filesystem::remove_all(dir);
}

TEST(StreamingSession, AbandonedSessionCleansUpSpills)
{
    auto dir = tempDir("abandon");
    {
        store::ArtifactCache cache(dir.string());
        StreamingSessionConfig config;
        config.pipeline = streamingConfig();
        config.max_resident_bytes = 8 * 1024;
        config.spill_cache = &cache;
        config.spill_scope = "t0/s1";
        {
            StreamingProfileSession session(config);
            std::vector<BranchRecord> records =
                makeRecords(23, 6000, 800);
            session.appendBlock(records);
            EXPECT_GT(session.spilledEpochs(), 0u);
            // ... abandoned without finish().
        }
        EXPECT_EQ(cache.entryCount(), 0u);
    }
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------
// Frame codec

TEST(ServeProtocol, FrameRoundTrip)
{
    serve::Frame frame;
    frame.type = serve::FrameType::Append;
    frame.session = 42;
    frame.payload = "hello payload";

    serve::FrameReader reader;
    std::string bytes = serve::encodeFrame(frame);
    ASSERT_TRUE(reader.feed(bytes.data(), bytes.size()));

    serve::Frame out;
    ASSERT_TRUE(reader.next(out));
    EXPECT_EQ(out.type, serve::FrameType::Append);
    EXPECT_EQ(out.session, 42u);
    EXPECT_EQ(out.payload, frame.payload);
    EXPECT_TRUE(out.crc_ok);
    EXPECT_FALSE(reader.next(out));
}

TEST(ServeProtocol, TruncatedFrameStaysPending)
{
    serve::Frame frame;
    frame.type = serve::FrameType::Begin;
    frame.session = 1;
    std::string bytes = serve::encodeFrame(frame);

    serve::FrameReader reader;
    // Feed all but the last byte: no frame, no failure, bytes pend.
    ASSERT_TRUE(reader.feed(bytes.data(), bytes.size() - 1));
    serve::Frame out;
    EXPECT_FALSE(reader.next(out));
    EXPECT_FALSE(reader.failed());
    EXPECT_GT(reader.pendingBytes(), 0u);
    // The final byte completes it.
    ASSERT_TRUE(reader.feed(bytes.data() + bytes.size() - 1, 1));
    EXPECT_TRUE(reader.next(out));
    EXPECT_EQ(reader.pendingBytes(), 0u);
}

TEST(ServeProtocol, BadMagicPoisonsStream)
{
    serve::Frame begin;
    begin.type = serve::FrameType::Begin;
    std::string bytes = serve::encodeFrame(begin);
    bytes[0] = 'X';
    serve::FrameReader reader;
    EXPECT_FALSE(reader.feed(bytes.data(), bytes.size()));
    EXPECT_TRUE(reader.failed());
    EXPECT_NE(reader.error().find("magic"), std::string::npos);
}

TEST(ServeProtocol, VersionMismatchPoisonsStream)
{
    serve::Frame begin;
    begin.type = serve::FrameType::Begin;
    std::string bytes = serve::encodeFrame(begin);
    bytes[4] = 99; // protocol version field
    serve::FrameReader reader;
    EXPECT_FALSE(reader.feed(bytes.data(), bytes.size()));
    EXPECT_TRUE(reader.failed());
    EXPECT_NE(reader.error().find("version"), std::string::npos);
}

TEST(ServeProtocol, OversizedLengthPoisonsStream)
{
    serve::Frame begin;
    begin.type = serve::FrameType::Begin;
    std::string bytes = serve::encodeFrame(begin);
    // Payload length field sits at offset 20; blow it past the cap.
    bytes[20] = bytes[21] = bytes[22] = bytes[23] = '\xff';
    serve::FrameReader reader;
    EXPECT_FALSE(reader.feed(bytes.data(), bytes.size()));
    EXPECT_TRUE(reader.failed());
    EXPECT_NE(reader.error().find("oversized"), std::string::npos);
}

TEST(ServeProtocol, CorruptPayloadFlagsCrc)
{
    serve::Frame frame;
    frame.type = serve::FrameType::Append;
    frame.payload = "some payload bytes";
    std::string bytes = serve::encodeFrame(frame);
    bytes[serve::frame_header_bytes] ^= 0x40; // first payload byte

    serve::FrameReader reader;
    ASSERT_TRUE(reader.feed(bytes.data(), bytes.size()));
    serve::Frame out;
    ASSERT_TRUE(reader.next(out));
    EXPECT_FALSE(out.crc_ok);
}

TEST(ServeProtocol, AppendPayloadRoundTrip)
{
    std::vector<BranchRecord> records = makeRecords(29, 500);
    std::string payload =
        serve::encodeAppendPayload(records.data(), records.size());

    std::vector<BranchRecord> out;
    std::string error;
    ASSERT_TRUE(serve::decodeAppendPayload(payload, out, error))
        << error;
    ASSERT_EQ(out.size(), records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(out[i].pc, records[i].pc);
        EXPECT_EQ(out[i].timestamp, records[i].timestamp);
        EXPECT_EQ(out[i].taken, records[i].taken);
    }

    // Truncated and padded payloads are rejected with a reason.
    std::string short_payload =
        payload.substr(0, payload.size() - 1);
    EXPECT_FALSE(
        serve::decodeAppendPayload(short_payload, out, error));
    std::string long_payload = payload + "x";
    EXPECT_FALSE(
        serve::decodeAppendPayload(long_payload, out, error));
}

// ---------------------------------------------------------------
// Service semantics

namespace
{

serve::Frame
makeRequest(serve::FrameType type, std::uint64_t session,
            std::string payload = {})
{
    serve::Frame frame;
    frame.type = type;
    frame.session = session;
    frame.payload = std::move(payload);
    return frame;
}

} // namespace

TEST(ProfileService, RequestErrorsAreTypedAndSurvivable)
{
    serve::ProfileService service(serve::ServiceConfig{});
    const std::uint64_t tenant = 1;

    // Append to a session that does not exist.
    std::vector<BranchRecord> records = makeRecords(31, 100);
    serve::Frame response = service.handle(
        tenant,
        makeRequest(serve::FrameType::Append, 5,
                    serve::encodeAppendPayload(records.data(),
                                               records.size())));
    EXPECT_EQ(response.status, serve::FrameStatus::UnknownSession);

    // Open it; a second Begin is a duplicate.
    EXPECT_EQ(service
                  .handle(tenant,
                          makeRequest(serve::FrameType::Begin, 5))
                  .status,
              serve::FrameStatus::Ok);
    EXPECT_EQ(service
                  .handle(tenant,
                          makeRequest(serve::FrameType::Begin, 5))
                  .status,
              serve::FrameStatus::DuplicateSession);

    // A frame whose payload failed its CRC is answered, not fatal.
    serve::Frame damaged = makeRequest(
        serve::FrameType::Append, 5,
        serve::encodeAppendPayload(records.data(), records.size()));
    damaged.crc_ok = false;
    EXPECT_EQ(service.handle(tenant, damaged).status,
              serve::FrameStatus::BadCrc);

    // Garbage payload.
    EXPECT_EQ(service
                  .handle(tenant,
                          makeRequest(serve::FrameType::Append, 5,
                                      "not a block"))
                  .status,
              serve::FrameStatus::BadPayload);

    // Valid ingest still works after all of the above.
    EXPECT_EQ(
        service
            .handle(tenant,
                    makeRequest(serve::FrameType::Append, 5,
                                serve::encodeAppendPayload(
                                    records.data(), records.size())))
            .status,
        serve::FrameStatus::Ok);

    // Re-sending the same block now violates monotonicity.
    EXPECT_EQ(
        service
            .handle(tenant,
                    makeRequest(serve::FrameType::Append, 5,
                                serve::encodeAppendPayload(
                                    records.data(), records.size())))
            .status,
        serve::FrameStatus::OutOfOrder);

    // The session is intact: Finish returns the valid profile.
    serve::Frame finish = service.handle(
        tenant, makeRequest(serve::FrameType::Finish, 5));
    EXPECT_EQ(finish.status, serve::FrameStatus::Ok);
    EXPECT_EQ(finish.payload,
              batchBytes(records, streamingConfig()));
    EXPECT_EQ(service.sessionCount(), 0u);
}

TEST(ProfileService, HelloRejectsVersionSkew)
{
    serve::ProfileService service(serve::ServiceConfig{});
    std::string payload;
    appendU32(payload, store::block_trace_version + 1);
    EXPECT_EQ(service
                  .handle(1, makeRequest(serve::FrameType::Hello, 0,
                                         payload))
                  .status,
              serve::FrameStatus::BadVersion);

    payload.clear();
    appendU32(payload, store::block_trace_version);
    EXPECT_EQ(service
                  .handle(1, makeRequest(serve::FrameType::Hello, 0,
                                         payload))
                  .status,
              serve::FrameStatus::Ok);
}

TEST(ProfileService, TenantsAreIsolated)
{
    serve::ProfileService service(serve::ServiceConfig{});
    std::vector<BranchRecord> a = makeRecords(37, 2000, 100);
    std::vector<BranchRecord> b = makeRecords(41, 2000, 100);

    // Same session id 9 on two tenants, different traces.
    ASSERT_EQ(service.handle(1, makeRequest(serve::FrameType::Begin, 9))
                  .status,
              serve::FrameStatus::Ok);
    ASSERT_EQ(service.handle(2, makeRequest(serve::FrameType::Begin, 9))
                  .status,
              serve::FrameStatus::Ok);
    ASSERT_EQ(
        service
            .handle(1, makeRequest(serve::FrameType::Append, 9,
                                   serve::encodeAppendPayload(
                                       a.data(), a.size())))
            .status,
        serve::FrameStatus::Ok);
    ASSERT_EQ(
        service
            .handle(2, makeRequest(serve::FrameType::Append, 9,
                                   serve::encodeAppendPayload(
                                       b.data(), b.size())))
            .status,
        serve::FrameStatus::Ok);

    EXPECT_EQ(service.handle(1, makeRequest(serve::FrameType::Finish, 9))
                  .payload,
              batchBytes(a, streamingConfig()));
    EXPECT_EQ(service.handle(2, makeRequest(serve::FrameType::Finish, 9))
                  .payload,
              batchBytes(b, streamingConfig()));

    // Aborting one tenant never touches another's sessions.
    ASSERT_EQ(service.handle(3, makeRequest(serve::FrameType::Begin, 1))
                  .status,
              serve::FrameStatus::Ok);
    ASSERT_EQ(service.handle(4, makeRequest(serve::FrameType::Begin, 1))
                  .status,
              serve::FrameStatus::Ok);
    service.abortTenant(3);
    EXPECT_EQ(service.sessionCount(), 1u);
    EXPECT_EQ(service.handle(4, makeRequest(serve::FrameType::Finish, 1))
                  .status,
              serve::FrameStatus::Ok);
}

TEST(ProfileService, ConcurrentSessionsStayExact)
{
    serve::ProfileService service(serve::ServiceConfig{});
    const unsigned tenants = 6;
    const std::uint64_t per_tenant = 3;

    std::vector<std::vector<BranchRecord>> traces;
    for (unsigned t = 0; t < tenants; ++t)
        traces.push_back(makeRecords(100 + t, 3000, 150));

    std::vector<int> bad(tenants, 0);
    exec::ThreadPool pool(tenants);
    for (unsigned t = 0; t < tenants; ++t) {
        pool.submit([&, t](unsigned) {
            serve::LoopbackChannel channel(service, t);
            serve::ServeClient client(channel);
            ASSERT_TRUE(client.hello());
            const std::vector<BranchRecord> &records = traces[t];
            for (std::uint64_t s = 0; s < per_tenant; ++s)
                ASSERT_TRUE(client.begin(s));
            // Interleave this tenant's sessions block by block.
            const std::size_t block = 577;
            for (std::size_t off = 0; off < records.size();
                 off += block) {
                std::size_t n =
                    std::min(block, records.size() - off);
                for (std::uint64_t s = 0; s < per_tenant; ++s)
                    ASSERT_TRUE(client.append(
                        s, records.data() + off, n));
            }
            std::string expected =
                batchBytes(records, streamingConfig());
            for (std::uint64_t s = 0; s < per_tenant; ++s) {
                std::optional<std::string> bytes =
                    client.finishBytes(s);
                if (!bytes || *bytes != expected)
                    ++bad[t];
            }
        });
    }
    pool.wait();
    for (unsigned t = 0; t < tenants; ++t)
        EXPECT_EQ(bad[t], 0) << "tenant " << t;
    EXPECT_EQ(service.sessionCount(), 0u);
}

// ---------------------------------------------------------------
// Stream transport

#ifdef BWSA_TEST_POSIX

TEST(ServeConnection, FullSessionOverSocketpair)
{
    int fds[2];
    ASSERT_EQ(
        ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    serve::ProfileService service(serve::ServiceConfig{});
    std::thread server([&] {
        serve::serveConnection(service, 7, fds[1], fds[1]);
        ::close(fds[1]);
    });

    std::vector<BranchRecord> records = makeRecords(53, 2500);
    {
        serve::FdChannel channel(fds[0], fds[0]);
        serve::ServeClient client(channel);
        EXPECT_TRUE(client.hello());
        EXPECT_TRUE(client.begin(3));
        EXPECT_TRUE(client.append(3, records));
        std::optional<std::string> bytes = client.finishBytes(3);
        ASSERT_TRUE(bytes.has_value());
        EXPECT_EQ(*bytes, batchBytes(records, streamingConfig()));
        // FdChannel's destructor closes fds[0]; the server sees EOF.
    }
    server.join();
}

TEST(ServeConnection, StreamGarbageDropsOnlyThatClient)
{
    int fds[2];
    ASSERT_EQ(
        ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    serve::ProfileService service(serve::ServiceConfig{});
    // A survivor session on another tenant.
    ASSERT_EQ(service.handle(99, makeRequest(serve::FrameType::Begin, 1))
                  .status,
              serve::FrameStatus::Ok);

    bool clean = true;
    std::thread server([&] {
        clean = serve::serveConnection(service, 7, fds[1], fds[1]);
        ::close(fds[1]);
    });

    const char garbage[] = "this is not a BWSF frame at all.........";
    ASSERT_GT(::write(fds[0], garbage, sizeof(garbage)), 0);
    ::close(fds[0]);
    server.join();

    EXPECT_FALSE(clean);
    // The garbage tenant is gone; the survivor still finishes.
    EXPECT_EQ(service.sessionCount(), 1u);
    EXPECT_EQ(service.handle(99, makeRequest(serve::FrameType::Finish, 1))
                  .status,
              serve::FrameStatus::Ok);
}

#endif // BWSA_TEST_POSIX

// ---------------------------------------------------------------
// Phase events

namespace
{

/**
 * A trace with @p phase_count regions of @p windows_each windows,
 * each region on its own disjoint PC set (full turnover at every
 * region change, none inside).  One record per timestamp unit.
 */
std::vector<BranchRecord>
makePhasedRecords(std::size_t phase_count, std::size_t windows_each,
                  std::uint64_t interval, std::uint32_t pool = 16)
{
    Pcg32 rng(97);
    std::vector<BranchRecord> records;
    records.reserve(phase_count * windows_each * interval);
    std::uint64_t ts = 0;
    for (std::size_t p = 0; p < phase_count; ++p)
        for (std::size_t w = 0; w < windows_each; ++w)
            for (std::uint64_t i = 0; i < interval; ++i) {
                BranchRecord r;
                r.pc = 0x10000ull * (p + 1) +
                       8ull * rng.nextBounded(pool);
                r.timestamp = ts++;
                r.taken = rng.nextBool(0.5);
                records.push_back(r);
            }
    return records;
}

/** The serial phase detector's event stream over @p records. */
std::vector<serve::PhaseEventInfo>
serialPhaseEvents(const std::vector<BranchRecord> &records,
                  std::uint64_t interval,
                  const obs::PhaseDetectorConfig &config)
{
    obs::PhaseAccumulator accumulator(interval);
    for (const BranchRecord &record : records)
        accumulator.sample(record.pc, record.timestamp);
    accumulator.finish();
    obs::PhaseTimeline timeline =
        obs::detectPhases(accumulator, config);
    std::vector<serve::PhaseEventInfo> events;
    for (std::size_t i = 1; i < timeline.phases.size(); ++i)
        events.push_back({i, timeline.phases[i].start_ts,
                          timeline.phases[i - 1].start_ts,
                          timeline.phases[i].boundary_similarity});
    return events;
}

} // namespace

TEST(ServeProtocol, PhaseEventPayloadRoundTrip)
{
    serve::PhaseEventInfo event;
    event.index = 3;
    event.start_ts = 4096;
    event.prev_start_ts = 1024;
    event.similarity = 0.12345678901234567; // must survive bit-exact

    std::string payload = serve::encodePhaseEventPayload(event);
    serve::PhaseEventInfo out;
    std::string error;
    ASSERT_TRUE(serve::decodePhaseEventPayload(payload, out, error))
        << error;
    EXPECT_EQ(out, event);

    // Strict length: truncated and padded payloads are rejected.
    EXPECT_FALSE(serve::decodePhaseEventPayload(
        payload.substr(0, payload.size() - 1), out, error));
    EXPECT_FALSE(serve::decodePhaseEventPayload(payload + "x", out,
                                                error));
}

TEST(ProfileService, ClientSentPhaseEventIsRejected)
{
    // PhaseEvent is a server-push notification, never a request.
    serve::ProfileService service(serve::ServiceConfig{});
    EXPECT_EQ(
        service
            .handle(1, makeRequest(serve::FrameType::PhaseEvent, 0))
            .status,
        serve::FrameStatus::BadPayload);
}

TEST(ProfileService, LivePhaseEventsMatchSerialDetector)
{
    const std::uint64_t interval = 128;
    serve::ServiceConfig service_config;
    service_config.pipeline = streamingConfig();
    obs::PhaseDetectorConfig phase_config =
        service_config.phase_config;

    std::vector<BranchRecord> records =
        makePhasedRecords(4, 6, interval);
    std::vector<serve::PhaseEventInfo> expected =
        serialPhaseEvents(records, interval, phase_config);
    ASSERT_GE(expected.size(), 3u); // the trace really is phased

    // The event stream is identical for any block partitioning,
    // including blocks that split windows and phases.
    for (std::size_t block : {std::size_t(77), std::size_t(512),
                              std::size_t(1000), records.size()}) {
        serve::ServiceConfig config_copy = service_config;
        serve::ProfileService service(std::move(config_copy));
        serve::LoopbackChannel channel(service, 1);
        serve::ServeClient client(channel);
        ASSERT_TRUE(client.begin(5, 0, interval));

        std::vector<serve::PhaseEventInfo> live;
        auto drain = [&] {
            for (auto &[session, event] : client.takePhaseEvents()) {
                EXPECT_EQ(session, 5u);
                live.push_back(event);
            }
        };
        for (std::size_t off = 0; off < records.size();
             off += block) {
            std::size_t n =
                std::min(block, records.size() - off);
            ASSERT_TRUE(client.append(5, records.data() + off, n));
            drain();
        }
        // Finish flushes the tail window; a boundary landing there
        // is pushed before the Finish response.
        ASSERT_TRUE(client.finishBytes(5).has_value());
        drain();
        EXPECT_EQ(live, expected) << "block size " << block;
    }
}

TEST(ProfileService, SessionsWithoutPhaseIntervalPushNoEvents)
{
    serve::ProfileService service(serve::ServiceConfig{});
    serve::LoopbackChannel channel(service, 1);
    serve::ServeClient client(channel);
    std::vector<BranchRecord> records = makePhasedRecords(3, 5, 64);
    ASSERT_TRUE(client.begin(1)); // phase_interval defaults to 0
    ASSERT_TRUE(client.append(1, records));
    ASSERT_TRUE(client.finishBytes(1).has_value());
    EXPECT_TRUE(client.takePhaseEvents().empty());
    EXPECT_EQ(client.pendingPhaseEvents(), 0u);
}

// ---------------------------------------------------------------
// Latency plumbing

TEST(LatencyMetrics, BoundsAndQuantilesAreSane)
{
    std::vector<std::uint64_t> bounds =
        obs::MetricsRegistry::latencyBoundsNs();
    ASSERT_GE(bounds.size(), 20u);
    EXPECT_EQ(bounds.front(), 1000u);
    EXPECT_EQ(bounds.back(), 10'000'000'000ull);
    for (std::size_t i = 1; i < bounds.size(); ++i)
        EXPECT_GT(bounds[i], bounds[i - 1]);

    obs::MetricsRegistry registry;
    obs::HistogramMetric h =
        registry.histogram("test.latency", bounds);
    // 1000 observations spread across two decades.
    for (int i = 0; i < 1000; ++i)
        h.observe(10'000 + static_cast<std::uint64_t>(i) * 1000);
    obs::MetricsSnapshot snapshot = registry.snapshot();
    const obs::SeriesSnapshot *series = snapshot.find("test.latency");
    ASSERT_NE(series, nullptr);
    double p50 = series->histogram.quantile(0.5);
    double p99 = series->histogram.quantile(0.99);
    EXPECT_GT(p50, 100'000.0);
    EXPECT_LT(p50, 1'000'000.0);
    EXPECT_GE(p99, p50);
    EXPECT_LE(p99, 1'800'000.0);
    // Quantiles of an empty histogram are zero, not garbage.
    obs::HistogramData empty;
    EXPECT_EQ(empty.quantile(0.5), 0.0);
}

