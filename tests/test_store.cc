/**
 * @file
 * Tests of the persistence layer (src/store):
 *
 *  - the v2 block container round-trips any trace exactly, for block
 *    sizes from 1 record up, and its range replay seeks -- decoding
 *    only the blocks covering the range, never the prefix;
 *  - corruption (flipped payload byte, truncation, missing footer,
 *    damaged footer CRC) is detected loudly, never silently decoded;
 *  - the artifact cache stores/loads atomically, self-heals corrupt
 *    entries, evicts LRU beyond its cap, and persists across reopen;
 *  - profile artifacts round-trip a full profile (stats + selection
 *    + graph), reject stale schemas and structural damage, and an
 *    imported artifact drives the pipeline to the same allocation as
 *    a fresh profile.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "core/pipeline.hh"
#include "store/artifact_cache.hh"
#include "store/block_trace.hh"
#include "store/crc32.hh"
#include "store/profile_artifact.hh"
#include "test_helpers.hh"
#include "trace/frequency_filter.hh"
#include "trace/trace_io.hh"
#include "trace/trace_stats.hh"
#include "util/random.hh"

using namespace bwsa;
using namespace bwsa::store;

namespace
{

/** Random trace with strictly ascending timestamps. */
MemoryTrace
makeRandomTrace(std::uint64_t seed, std::size_t records,
                std::uint64_t distinct = 400)
{
    Pcg32 rng(seed);
    MemoryTrace trace;
    std::uint64_t ts = 0;
    for (std::size_t i = 0; i < records; ++i) {
        BranchRecord r;
        r.pc = 0x400000 + 8ull * rng.nextBounded(
                              static_cast<std::uint32_t>(distinct));
        ts += 1 + rng.nextBounded(20);
        r.timestamp = ts;
        r.taken = rng.nextBool(0.6);
        trace.onBranch(r);
    }
    return trace;
}

/** Temp file path helper; unique per stem. */
std::string
tempPath(const std::string &stem)
{
    return (std::filesystem::temp_directory_path() /
            ("bwsa_store_test_" + stem))
        .string();
}

/** Fresh (removed, then unique) temp directory for a cache. */
std::string
tempDir(const std::string &stem)
{
    std::string dir = tempPath(stem + ".dir");
    std::filesystem::remove_all(dir);
    return dir;
}

/** Sink that records everything it is delivered. */
class RecordingSink : public TraceSink
{
  public:
    void
    onBranch(const BranchRecord &r) override
    {
        records.push_back(r);
    }
    void onEnd() override { ++ends; }
    std::vector<BranchRecord> records;
    int ends = 0;
};

/** Sink that stops after @p limit deliveries. */
class StoppingSink : public TraceSink
{
  public:
    explicit StoppingSink(int limit) : _limit(limit) {}
    void onBranch(const BranchRecord &) override { ++branches; }
    void onEnd() override { ++ends; }
    bool done() const override { return branches >= _limit; }
    int branches = 0;
    int ends = 0;

  private:
    int _limit;
};

bool
sameRecord(const BranchRecord &a, const BranchRecord &b)
{
    return a.pc == b.pc && a.timestamp == b.timestamp &&
           a.taken == b.taken;
}

/** Write @p trace as v2 at a fresh temp path; returns the path. */
std::string
writeV2(const MemoryTrace &trace, const std::string &stem,
        std::uint64_t block_records)
{
    std::string path = tempPath(stem + ".trace");
    std::filesystem::remove(path);
    writeBlockTraceFile(path, trace, block_records);
    return path;
}

/** Flip one byte of the file at @p offset. */
void
flipByte(const std::string &path, std::uint64_t offset)
{
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(static_cast<std::streamoff>(offset));
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x5a);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&c, 1);
}

/** Truncate the file to @p keep bytes. */
void
truncateFile(const std::string &path, std::uint64_t keep)
{
    std::filesystem::resize_file(path, keep);
}

} // namespace

// ------------------------------------------------------- block container

TEST(BlockTrace, RoundTripsAcrossBlockSizes)
{
    MemoryTrace trace = makeRandomTrace(3, 1000, 200);
    // Block sizes covering: one record per block, partial last block,
    // exact multiple, and everything in one block.
    for (std::uint64_t block_records :
         {std::uint64_t(1), std::uint64_t(7), std::uint64_t(250),
          std::uint64_t(1000), std::uint64_t(100000)}) {
        std::string path = writeV2(trace, "roundtrip", block_records);
        BlockTraceReader reader(path);
        EXPECT_EQ(reader.recordCount(), trace.recordCount());
        EXPECT_EQ(reader.blockRecordsHint(),
                  std::min<std::uint64_t>(block_records, 0xffffffffu));

        RecordingSink sink;
        reader.replay(sink);
        ASSERT_EQ(sink.records.size(), trace.size())
            << "block_records=" << block_records;
        EXPECT_EQ(sink.ends, 1);
        for (std::size_t i = 0; i < trace.size(); ++i)
            ASSERT_TRUE(sameRecord(sink.records[i], trace[i]))
                << "record " << i << " block_records="
                << block_records;
        std::filesystem::remove(path);
    }
}

TEST(BlockTrace, FooterDescribesBlocksExactly)
{
    MemoryTrace trace = makeRandomTrace(5, 1000, 100);
    std::string path = writeV2(trace, "footer", 300);
    BlockTraceReader reader(path);
    ASSERT_EQ(reader.blockCount(), 4u); // 300+300+300+100
    const std::vector<TraceBlockInfo> &blocks = reader.blocks();
    std::uint64_t first = 0;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        EXPECT_EQ(blocks[i].first_record, first);
        first += blocks[i].record_count;
        EXPECT_EQ(blocks[i].first_timestamp,
                  trace[blocks[i].first_record].timestamp);
        EXPECT_EQ(blocks[i].last_timestamp,
                  trace[first - 1].timestamp);
    }
    EXPECT_EQ(first, trace.recordCount());
    EXPECT_EQ(blocks.back().record_count, 100u);

    for (const BlockCheckResult &check : reader.verifyBlocks())
        EXPECT_TRUE(check.ok) << "block " << check.index << ": "
                              << check.message;
    std::filesystem::remove(path);
}

TEST(BlockTrace, EmptyTraceRoundTrips)
{
    MemoryTrace empty;
    std::string path = writeV2(empty, "empty", 64);
    EXPECT_EQ(traceFileVersion(path), 2u);
    BlockTraceReader reader(path);
    EXPECT_EQ(reader.recordCount(), 0u);
    EXPECT_EQ(reader.blockCount(), 0u);
    RecordingSink sink;
    reader.replay(sink);
    EXPECT_TRUE(sink.records.empty());
    EXPECT_EQ(sink.ends, 1);
    std::filesystem::remove(path);
}

TEST(BlockTrace, ReplayRangeMatchesSlices)
{
    MemoryTrace trace = makeRandomTrace(7, 900, 150);
    std::string path = writeV2(trace, "range", 128);
    BlockTraceReader reader(path);

    const std::uint64_t n = trace.recordCount();
    const std::pair<std::uint64_t, std::uint64_t> ranges[] = {
        {0, n},        {0, 1},       {127, 129},  {128, 256},
        {500, 900},    {899, 900},   {300, 300},  {250, 700},
        {n, n + 50},   {0, n + 100},
    };
    for (auto [begin, end] : ranges) {
        RecordingSink sink;
        reader.replayRange(sink, begin, end);
        std::uint64_t lo = std::min(begin, n);
        std::uint64_t hi = std::min(end, n);
        if (hi < lo)
            hi = lo;
        ASSERT_EQ(sink.records.size(), hi - lo)
            << "range [" << begin << ", " << end << ")";
        EXPECT_EQ(sink.ends, 1);
        for (std::uint64_t i = lo; i < hi; ++i)
            ASSERT_TRUE(sameRecord(sink.records[i - lo], trace[i]))
                << "range [" << begin << ", " << end << ") record "
                << i;
    }
    std::filesystem::remove(path);
}

TEST(BlockTrace, RangeReplaySeeksInsteadOfSkipDecoding)
{
    // 10 blocks of 100 records.  Replaying the last 100 records must
    // decode only the final block -- not the 900-record prefix.
    MemoryTrace trace = makeRandomTrace(11, 1000, 80);
    std::string path = writeV2(trace, "seek", 100);
    BlockTraceReader reader(path);
    ASSERT_EQ(reader.blockCount(), 10u);

    RecordingSink sink;
    reader.replayRange(sink, 900, 1000);
    EXPECT_EQ(sink.records.size(), 100u);
    EXPECT_EQ(reader.recordsDecoded(), 100u);
    EXPECT_EQ(reader.blocksRead(), 1u);

    // A mid-block start decodes at most one extra block's prefix.
    RecordingSink mid;
    reader.replayRange(mid, 450, 650);
    EXPECT_EQ(mid.records.size(), 200u);
    EXPECT_EQ(reader.recordsDecoded() - 100u, 250u); // blocks 4..6
    EXPECT_EQ(reader.blocksRead() - 1u, 3u);
    std::filesystem::remove(path);
}

TEST(BlockTrace, DoneStopsMidBlock)
{
    MemoryTrace trace = makeRandomTrace(13, 600, 50);
    std::string path = writeV2(trace, "done", 200);
    BlockTraceReader reader(path);

    StoppingSink sink(10);
    reader.replay(sink);
    EXPECT_EQ(sink.branches, 10);
    EXPECT_EQ(sink.ends, 1); // onEnd still delivered
    // Stopping in block 0 must not read blocks 1 and 2.
    EXPECT_EQ(reader.blocksRead(), 1u);
    std::filesystem::remove(path);
}

TEST(BlockTrace, SegmentsCoverTheTrace)
{
    MemoryTrace trace = makeRandomTrace(17, 500, 60);
    std::string path = writeV2(trace, "segments", 64);
    BlockTraceReader reader(path);

    std::vector<TraceSegment> segments = reader.segments(4);
    ASSERT_EQ(segments.size(), 4u);
    std::vector<BranchRecord> all;
    for (const TraceSegment &segment : segments) {
        RecordingSink sink;
        segment.replay(sink);
        all.insert(all.end(), sink.records.begin(),
                   sink.records.end());
    }
    ASSERT_EQ(all.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i)
        ASSERT_TRUE(sameRecord(all[i], trace[i])) << "record " << i;
    std::filesystem::remove(path);
}

TEST(BlockTrace, DigestIdentifiesContent)
{
    MemoryTrace trace = makeRandomTrace(19, 400, 40);
    std::string a = writeV2(trace, "digest_a", 100);
    std::string b = writeV2(trace, "digest_b", 100);
    BlockTraceReader ra(a), rb(b);
    EXPECT_EQ(ra.digest(), rb.digest());
    EXPECT_NE(ra.digest(), 0u);

    // One different record => different block CRC => different digest.
    MemoryTrace other = trace;
    BranchRecord extra;
    extra.pc = 0x500000;
    extra.timestamp = trace[trace.size() - 1].timestamp + 5;
    extra.taken = true;
    other.onBranch(extra);
    std::string c = writeV2(other, "digest_c", 100);
    BlockTraceReader rc(c);
    EXPECT_NE(ra.digest(), rc.digest());
    std::filesystem::remove(a);
    std::filesystem::remove(b);
    std::filesystem::remove(c);
}

TEST(BlockTrace, OpenTraceReaderDispatchesByVersion)
{
    MemoryTrace trace = makeRandomTrace(23, 300, 30);

    std::string v1 = tempPath("dispatch_v1.trace");
    std::filesystem::remove(v1);
    writeTraceFile(v1, trace);
    EXPECT_EQ(traceFileVersion(v1), 1u);

    std::string v2 = writeV2(trace, "dispatch_v2", 100);
    EXPECT_EQ(traceFileVersion(v2), 2u);

    for (const std::string &path : {v1, v2}) {
        std::unique_ptr<TraceSource> reader = openTraceReader(path);
        ASSERT_NE(reader, nullptr);
        EXPECT_EQ(reader->recordCount(), trace.recordCount());
        RecordingSink sink;
        reader->replay(sink);
        ASSERT_EQ(sink.records.size(), trace.size());
        for (std::size_t i = 0; i < trace.size(); ++i)
            ASSERT_TRUE(sameRecord(sink.records[i], trace[i]));
    }
    std::filesystem::remove(v1);
    std::filesystem::remove(v2);
}

TEST(BlockTrace, WriterRejectsNonAscendingTimestamps)
{
    EXPECT_EXIT(
        {
            std::string path = tempPath("descending.trace");
            BlockTraceWriter writer(path, 16);
            BranchRecord a;
            a.pc = 0x400000;
            a.timestamp = 10;
            a.taken = true;
            BranchRecord b = a; // same timestamp: not ascending
            b.pc = 0x400008;
            writer.onBranch(a);
            writer.onBranch(b);
        },
        ::testing::ExitedWithCode(1), "strictly ascend");
}

// ----------------------------------------------------------- read modes

TEST(BlockTraceReadMode, AutoPrefersMmapWherePossible)
{
    MemoryTrace trace = makeRandomTrace(37, 300, 30);
    std::string path = writeV2(trace, "mode_auto", 100);

    BlockTraceReader auto_reader(path);
#if defined(__unix__) || defined(__APPLE__)
    EXPECT_TRUE(auto_reader.usingMmap());
    BlockTraceReader mmap_reader(path, ReadMode::Mmap);
    EXPECT_TRUE(mmap_reader.usingMmap());
#endif
    BlockTraceReader stream_reader(path, ReadMode::Stream);
    EXPECT_FALSE(stream_reader.usingMmap());
    std::filesystem::remove(path);
}

TEST(BlockTraceReadMode, MmapAndStreamReplayIdentically)
{
    MemoryTrace trace = makeRandomTrace(41, 900, 120);
    std::string path = writeV2(trace, "mode_identity", 128);

    BlockTraceReader mapped(path);           // Auto: mmap on POSIX
    BlockTraceReader streamed(path, ReadMode::Stream);
    EXPECT_EQ(mapped.digest(), streamed.digest());
    EXPECT_EQ(mapped.recordCount(), streamed.recordCount());

    // Full replay delivers the same records through either path.
    RecordingSink from_map, from_stream;
    mapped.replay(from_map);
    streamed.replay(from_stream);
    ASSERT_EQ(from_map.records.size(), from_stream.records.size());
    for (std::size_t i = 0; i < from_map.records.size(); ++i)
        ASSERT_TRUE(
            sameRecord(from_map.records[i], from_stream.records[i]))
            << "record " << i;

    // Range replays, including block-boundary and past-the-end cases.
    const std::uint64_t n = trace.recordCount();
    const std::pair<std::uint64_t, std::uint64_t> ranges[] = {
        {0, n},     {0, 1},    {127, 129}, {128, 256},
        {500, 900}, {899, n},  {300, 300}, {n, n + 10},
    };
    for (auto [begin, end] : ranges) {
        RecordingSink a, b;
        mapped.replayRange(a, begin, end);
        streamed.replayRange(b, begin, end);
        ASSERT_EQ(a.records.size(), b.records.size())
            << "range [" << begin << ", " << end << ")";
        for (std::size_t i = 0; i < a.records.size(); ++i)
            ASSERT_TRUE(sameRecord(a.records[i], b.records[i]));
        EXPECT_EQ(a.ends, 1);
        EXPECT_EQ(b.ends, 1);
    }

    // Early-stopping sinks behave identically: stop mid-block, touch
    // only the blocks actually needed.
    StoppingSink stop_map(10), stop_stream(10);
    std::uint64_t map_blocks = mapped.blocksRead();
    std::uint64_t stream_blocks = streamed.blocksRead();
    mapped.replay(stop_map);
    streamed.replay(stop_stream);
    EXPECT_EQ(stop_map.branches, stop_stream.branches);
    EXPECT_EQ(stop_map.ends, 1);
    EXPECT_EQ(stop_stream.ends, 1);
    EXPECT_EQ(mapped.blocksRead() - map_blocks, 1u);
    EXPECT_EQ(streamed.blocksRead() - stream_blocks, 1u);

    for (const BlockCheckResult &check : streamed.verifyBlocks())
        EXPECT_TRUE(check.ok) << check.message;
    std::filesystem::remove(path);
}

TEST(BlockTraceReadMode, ConcurrentSegmentsShareOneHandle)
{
    // Sharded profiling replays segments of one reader concurrently.
    // Both read paths must serve parallel replayRange calls off the
    // single handle opened at construction (the stream path guards a
    // shared ifstream; mmap needs no synchronization at all).
    MemoryTrace trace = makeRandomTrace(43, 1200, 90);
    std::string path = writeV2(trace, "mode_threads", 100);

    for (ReadMode mode : {ReadMode::Auto, ReadMode::Stream}) {
        BlockTraceReader reader(path, mode);
        constexpr std::size_t workers = 6;
        std::uint64_t span = trace.recordCount() / workers;
        std::vector<RecordingSink> sinks(workers);
        std::vector<std::thread> threads;
        for (std::size_t w = 0; w < workers; ++w)
            threads.emplace_back([&, w] {
                std::uint64_t begin = w * span;
                std::uint64_t end = (w + 1 == workers)
                                        ? trace.recordCount()
                                        : begin + span;
                reader.replayRange(sinks[w], begin, end);
            });
        for (std::thread &t : threads)
            t.join();

        std::vector<BranchRecord> all;
        for (const RecordingSink &sink : sinks)
            all.insert(all.end(), sink.records.begin(),
                       sink.records.end());
        ASSERT_EQ(all.size(), trace.size());
        for (std::size_t i = 0; i < trace.size(); ++i)
            ASSERT_TRUE(sameRecord(all[i], trace[i]))
                << "record " << i;
    }
    std::filesystem::remove(path);
}

TEST(BlockTraceReadMode, CorruptionDetectedInBothModes)
{
    MemoryTrace trace = makeRandomTrace(47, 500, 50);
    std::string path = writeV2(trace, "mode_corrupt", 100);
    flipByte(path, 20); // inside block 0's payload

    for (ReadMode mode : {ReadMode::Auto, ReadMode::Stream}) {
        BlockTraceReader reader(path, mode);
        std::vector<BlockCheckResult> checks = reader.verifyBlocks();
        ASSERT_EQ(checks.size(), 5u);
        EXPECT_FALSE(checks[0].ok);
        EXPECT_NE(checks[0].message.find("CRC"), std::string::npos);
        for (std::size_t i = 1; i < checks.size(); ++i)
            EXPECT_TRUE(checks[i].ok) << "block " << i;
    }
    std::filesystem::remove(path);
}

// ------------------------------------------------- corruption detection

TEST(BlockTraceCorruption, FlippedPayloadByteIsFatalOnReplay)
{
    MemoryTrace trace = makeRandomTrace(29, 500, 50);
    std::string path = writeV2(trace, "flip", 100);
    // Offset 20 lands inside block 0's payload (header is 8 bytes).
    flipByte(path, 20);

    EXPECT_EXIT(
        {
            BlockTraceReader reader(path);
            RecordingSink sink;
            reader.replay(sink);
        },
        ::testing::ExitedWithCode(1), "corrupt trace block 0");

    // verifyBlocks reports the damage without dying, and pins it to
    // exactly the block containing the flipped byte.
    BlockTraceReader reader(path);
    std::vector<BlockCheckResult> checks = reader.verifyBlocks();
    ASSERT_EQ(checks.size(), 5u);
    EXPECT_FALSE(checks[0].ok);
    EXPECT_NE(checks[0].message.find("CRC"), std::string::npos);
    for (std::size_t i = 1; i < checks.size(); ++i)
        EXPECT_TRUE(checks[i].ok) << "block " << i;
    std::filesystem::remove(path);
}

TEST(BlockTraceCorruption, TruncationIsFatalAtOpen)
{
    MemoryTrace trace = makeRandomTrace(31, 400, 40);
    std::string path = writeV2(trace, "truncate", 100);
    std::uint64_t size = std::filesystem::file_size(path);
    truncateFile(path, size - 20);
    EXPECT_EXIT({ BlockTraceReader reader(path); },
                ::testing::ExitedWithCode(1), "trailer");
    std::filesystem::remove(path);
}

TEST(BlockTraceCorruption, MissingFooterIsFatalAtOpen)
{
    MemoryTrace trace = makeRandomTrace(37, 400, 40);
    std::string path = writeV2(trace, "nofooter", 100);
    BlockTraceReader intact(path);
    // Drop the whole footer + trailer, keeping only the payloads.
    truncateFile(path, intact.blocks().back().offset +
                           intact.blocks().back().payload_bytes);
    EXPECT_EXIT({ BlockTraceReader reader(path); },
                ::testing::ExitedWithCode(1), "trailer");
    std::filesystem::remove(path);
}

TEST(BlockTraceCorruption, DamagedFooterCrcIsFatalAtOpen)
{
    MemoryTrace trace = makeRandomTrace(41, 400, 40);
    std::string path = writeV2(trace, "footercrc", 100);
    std::uint64_t size = std::filesystem::file_size(path);
    // The footer's first entry starts footer_offset bytes in; damage
    // a byte inside the footer region (36-byte trailer at the end,
    // 4 blocks x 56-byte entries before it).
    flipByte(path, size - 36 - 4 * 56 + 10);
    EXPECT_EXIT({ BlockTraceReader reader(path); },
                ::testing::ExitedWithCode(1), "footer");
    std::filesystem::remove(path);
}

TEST(BlockTraceCorruption, NotATraceIsFatal)
{
    std::string path = tempPath("nottrace.trace");
    {
        std::ofstream out(path, std::ios::binary);
        out << "this is not a trace file, it only plays one on tv";
    }
    EXPECT_EXIT({ traceFileVersion(path); },
                ::testing::ExitedWithCode(1), "not a BWSA trace");
    std::filesystem::remove(path);
}

// ------------------------------------------------------------ crc32

TEST(Crc32, MatchesKnownVectors)
{
    // IEEE CRC-32 of "123456789" is the classic check value.
    EXPECT_EQ(crc32Of("123456789"), 0xcbf43926u);
    EXPECT_EQ(crc32Of(""), 0u);
    // Incremental == one-shot.
    Crc32 crc;
    crc.update("1234");
    crc.update("56789");
    EXPECT_EQ(crc.value(), 0xcbf43926u);
}

// ------------------------------------------------------- cache keys

TEST(CacheKey, DeterministicAndSensitive)
{
    auto build = [](std::uint64_t records, double scale) {
        CacheKeyBuilder b;
        b.add("trace", "pgp:a").add("records", records).add("scale",
                                                            scale);
        return b.key();
    };
    std::string key = build(1000, 0.5);
    EXPECT_EQ(key.size(), 32u);
    EXPECT_EQ(key, build(1000, 0.5));
    EXPECT_NE(key, build(1001, 0.5));
    EXPECT_NE(key, build(1000, 0.25));

    // Field *names* are part of the material: same values under
    // different names must not collide.
    CacheKeyBuilder renamed;
    renamed.add("trace2", "pgp:a")
        .add("records", std::uint64_t(1000))
        .add("scale", 0.5);
    EXPECT_NE(key, renamed.key());

    for (char c : key)
        EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
            << "non-hex key character " << c;
}

// -------------------------------------------------------- artifact cache

TEST(ArtifactCache, StoreLoadMiss)
{
    std::string dir = tempDir("cache_basic");
    ArtifactCache cache(dir);
    EXPECT_EQ(cache.load("0123456789abcdef0123456789abcdef"),
              std::nullopt);
    EXPECT_EQ(cache.misses(), 1u);

    cache.store("0123456789abcdef0123456789abcdef", "hello payload");
    EXPECT_EQ(cache.entryCount(), 1u);
    EXPECT_EQ(cache.totalBytes(), 13u);
    std::optional<std::string> got =
        cache.load("0123456789abcdef0123456789abcdef");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, "hello payload");
    EXPECT_EQ(cache.hits(), 1u);
    std::filesystem::remove_all(dir);
}

TEST(ArtifactCache, PersistsAcrossReopen)
{
    std::string dir = tempDir("cache_reopen");
    std::string key = "00112233445566778899aabbccddeeff";
    {
        ArtifactCache cache(dir);
        cache.store(key, "survives the process");
    }
    ArtifactCache reopened(dir);
    EXPECT_EQ(reopened.entryCount(), 1u);
    std::optional<std::string> got = reopened.load(key);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, "survives the process");
    std::filesystem::remove_all(dir);
}

TEST(ArtifactCache, CorruptEntrySelfHeals)
{
    std::string dir = tempDir("cache_corrupt");
    std::string key = "ffeeddccbbaa99887766554433221100";
    ArtifactCache cache(dir);
    cache.store(key, "soon to be damaged");

    // Flip a payload byte behind the cache's back: envelope is
    // magic(4) + version(4) + size(8) + crc(4) = 20 bytes.
    flipByte(dir + "/" + key + ".obj", 25);

    EXPECT_EQ(cache.load(key), std::nullopt);
    EXPECT_EQ(cache.corruptDropped(), 1u);
    EXPECT_EQ(cache.entryCount(), 0u);
    EXPECT_FALSE(
        std::filesystem::exists(dir + "/" + key + ".obj"));
    // And the damage does not resurrect on reopen.
    ArtifactCache reopened(dir);
    EXPECT_EQ(reopened.load(key), std::nullopt);
    std::filesystem::remove_all(dir);
}

TEST(ArtifactCache, EvictsLeastRecentlyUsed)
{
    std::string dir = tempDir("cache_lru");
    // Cap of 25 payload bytes; 10-byte entries.
    ArtifactCache cache(dir, 25);
    std::string a(32, 'a'), b(32, 'b'), c(32, 'c');
    cache.store(a, "aaaaaaaaaa");
    cache.store(b, "bbbbbbbbbb");
    // Touch a so b becomes the LRU entry.
    EXPECT_TRUE(cache.load(a).has_value());
    cache.store(c, "cccccccccc"); // 30 > 25: evicts b
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_TRUE(cache.contains(a));
    EXPECT_FALSE(cache.contains(b));
    EXPECT_TRUE(cache.contains(c));
    EXPECT_LE(cache.totalBytes(), 25u);

    // An oversized store never evicts itself.
    std::string d(32, 'd');
    cache.store(d, std::string(100, 'x'));
    EXPECT_TRUE(cache.contains(d));
    std::filesystem::remove_all(dir);
}

TEST(ArtifactCache, InvalidateRemovesEntry)
{
    std::string dir = tempDir("cache_invalidate");
    std::string key = "0f1e2d3c4b5a69788796a5b4c3d2e1f0";
    ArtifactCache cache(dir);
    cache.store(key, "doomed");
    EXPECT_TRUE(cache.invalidate(key));
    EXPECT_FALSE(cache.contains(key));
    EXPECT_FALSE(cache.invalidate(key));
    EXPECT_EQ(cache.load(key), std::nullopt);
    std::filesystem::remove_all(dir);
}

// ----------------------------------------------------- profile artifact

namespace
{

/** A profiled pipeline + its artifact, from one random trace. */
ProfileArtifact
makeArtifact(AllocationPipeline &pipeline, std::uint64_t seed)
{
    MemoryTrace trace = makeRandomTrace(seed, 3000, 250);
    testhelpers::profileRun(pipeline, trace);
    return ProfileArtifact{pipeline.lastStats(),
                           pipeline.lastSelection(),
                           pipeline.graph()};
}

} // namespace

TEST(ProfileArtifactTest, RoundTripsExactly)
{
    AllocationPipeline pipeline;
    ProfileArtifact original = makeArtifact(pipeline, 101);

    std::string bytes = serializeProfileArtifact(original);
    ProfileArtifact restored;
    ASSERT_EQ(parseProfileArtifact(bytes, restored),
              ArtifactParseStatus::Ok);

    EXPECT_EQ(restored.stats.dynamicBranches(),
              original.stats.dynamicBranches());
    EXPECT_EQ(restored.stats.dynamicTaken(),
              original.stats.dynamicTaken());
    EXPECT_EQ(restored.stats.staticBranches(),
              original.stats.staticBranches());
    EXPECT_EQ(restored.stats.lastTimestamp(),
              original.stats.lastTimestamp());
    for (const auto &[pc, counts] : original.stats.table()) {
        BranchCounts rc = restored.stats.counts(pc);
        EXPECT_EQ(rc.executed, counts.executed);
        EXPECT_EQ(rc.taken, counts.taken);
    }
    EXPECT_EQ(restored.selection.selected,
              original.selection.selected);
    EXPECT_EQ(restored.selection.total_dynamic,
              original.selection.total_dynamic);
    EXPECT_EQ(restored.selection.analyzed_dynamic,
              original.selection.analyzed_dynamic);
    ASSERT_EQ(restored.graph.nodeCount(),
              original.graph.nodeCount());
    for (NodeId id = 0; id < original.graph.nodeCount(); ++id) {
        EXPECT_EQ(restored.graph.node(id).pc,
                  original.graph.node(id).pc);
        EXPECT_EQ(restored.graph.node(id).executed,
                  original.graph.node(id).executed);
    }
    EXPECT_EQ(restored.graph.edges(), original.graph.edges());

    // Canonical: serializing the restored artifact is byte-identical.
    EXPECT_EQ(serializeProfileArtifact(restored), bytes);
}

TEST(ProfileArtifactTest, StaleSchemaIsStaleNotCorrupt)
{
    AllocationPipeline pipeline;
    std::string bytes =
        serializeProfileArtifact(makeArtifact(pipeline, 103));
    // The schema version is the u32 after the 4-byte magic.
    bytes[4] = static_cast<char>(bytes[4] + 1);
    ProfileArtifact out;
    EXPECT_EQ(parseProfileArtifact(bytes, out),
              ArtifactParseStatus::Stale);
}

TEST(ProfileArtifactTest, DamageIsCorruptNeverPartial)
{
    AllocationPipeline pipeline;
    std::string bytes =
        serializeProfileArtifact(makeArtifact(pipeline, 107));

    ProfileArtifact out;
    // Bad magic.
    std::string bad_magic = bytes;
    bad_magic[0] = 'X';
    EXPECT_EQ(parseProfileArtifact(bad_magic, out),
              ArtifactParseStatus::Corrupt);
    // Truncated at several depths.
    for (std::size_t keep : {std::size_t(0), std::size_t(6),
                             std::size_t(40), bytes.size() - 1}) {
        EXPECT_EQ(parseProfileArtifact(
                      std::string_view(bytes).substr(0, keep), out),
                  ArtifactParseStatus::Corrupt)
            << "kept " << keep << " bytes";
    }
    // Trailing garbage.
    EXPECT_EQ(parseProfileArtifact(bytes + "extra", out),
              ArtifactParseStatus::Corrupt);
    // out must be untouched by all the failures above.
    EXPECT_EQ(out.graph.nodeCount(), 0u);
    EXPECT_EQ(out.stats.dynamicBranches(), 0u);
}

TEST(ProfileArtifactTest, LoadInvalidatesStaleEntries)
{
    std::string dir = tempDir("cache_stale");
    ArtifactCache cache(dir);
    AllocationPipeline pipeline;
    ProfileArtifact artifact = makeArtifact(pipeline, 109);
    std::string key = "abcdefabcdefabcdefabcdefabcdef00";

    // A valid entry loads.
    storeProfileArtifact(cache, key, artifact);
    EXPECT_TRUE(loadProfileArtifact(cache, key).has_value());

    // An entry from a different schema is dropped, not returned:
    // simulate an old writer by patching the schema byte.
    std::string stale = serializeProfileArtifact(artifact);
    stale[4] = static_cast<char>(stale[4] + 1);
    cache.store(key, stale);
    EXPECT_EQ(loadProfileArtifact(cache, key), std::nullopt);
    EXPECT_FALSE(cache.contains(key));

    // A structurally damaged entry likewise.
    cache.store(key, serializeProfileArtifact(artifact).substr(0, 30));
    EXPECT_EQ(loadProfileArtifact(cache, key), std::nullopt);
    EXPECT_FALSE(cache.contains(key));
    std::filesystem::remove_all(dir);
}

TEST(ProfileArtifactTest, ImportedProfileMatchesFreshProfile)
{
    MemoryTrace trace = makeRandomTrace(113, 4000, 300);

    AllocationPipeline fresh;
    testhelpers::profileRun(fresh, trace);

    // Round-trip the profile through serialized bytes and import it
    // into a new pipeline: the graph, the profile count, and the
    // allocations at several table sizes must all be identical.
    ProfileArtifact artifact{fresh.lastStats(), fresh.lastSelection(),
                             fresh.graph()};
    std::string bytes = serializeProfileArtifact(artifact);
    ProfileArtifact restored;
    ASSERT_EQ(parseProfileArtifact(bytes, restored),
              ArtifactParseStatus::Ok);

    AllocationPipeline imported;
    imported.importProfile(restored.stats, restored.selection,
                           restored.graph);
    EXPECT_EQ(imported.profileCount(), 1u);
    EXPECT_TRUE(imported.hasProfileData());
    ASSERT_EQ(imported.graph().nodeCount(),
              fresh.graph().nodeCount());
    EXPECT_EQ(imported.graph().edges(), fresh.graph().edges());

    for (std::uint64_t size : {64ull, 256ull, 1024ull}) {
        AllocationResult a = fresh.allocate(size);
        AllocationResult b = imported.allocate(size);
        EXPECT_EQ(a.residual_conflict, b.residual_conflict)
            << "table size " << size;
        EXPECT_EQ(a.shared_nodes, b.shared_nodes)
            << "table size " << size;
    }
    RequiredSizeResult rf = fresh.requiredSize(1024);
    RequiredSizeResult ri = imported.requiredSize(1024);
    EXPECT_EQ(rf.achieved, ri.achieved);
    EXPECT_EQ(rf.required_entries, ri.required_entries);
}

TEST(ProfileArtifactTest, ImportMergesLikeASecondProfile)
{
    MemoryTrace a = makeRandomTrace(127, 1500, 120);
    MemoryTrace b = makeRandomTrace(131, 1500, 120);

    // Reference: two fresh profile runs on one pipeline.
    AllocationPipeline reference;
    testhelpers::profileRun(reference, a);
    testhelpers::profileRun(reference, b);

    // One fresh run, then importing b's artifact must merge exactly
    // like profiling b directly (this is the ablation_profiles merged
    // pipeline's cache-hit path).
    AllocationPipeline donor;
    testhelpers::profileRun(donor, b);
    ProfileArtifact artifact{donor.lastStats(), donor.lastSelection(),
                             donor.graph()};

    AllocationPipeline merged;
    testhelpers::profileRun(merged, a);
    merged.importProfile(artifact.stats, artifact.selection,
                         artifact.graph);
    EXPECT_EQ(merged.profileCount(), 2u);
    ASSERT_EQ(merged.graph().nodeCount(),
              reference.graph().nodeCount());
    EXPECT_EQ(merged.graph().edges(), reference.graph().edges());
}
