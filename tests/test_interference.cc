/**
 * @file
 * Tests for the BHT interference attribution probe: the four-way
 * classification, the per-entry conflict ranking, the report JSON,
 * the probe's passivity on a live PAg, and the headline claim the
 * probe exists to check -- branch allocation eliminates destructive
 * aliasing events relative to the PC-indexed baseline.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/pipeline.hh"
#include "predict/factory.hh"
#include "predict/index_policy.hh"
#include "predict/interference.hh"
#include "predict/twolevel.hh"
#include "test_helpers.hh"
#include "workload/presets.hh"

using namespace bwsa;

// ------------------------------------------------------- classification

TEST(InterferenceProbe, ClassifiesTheFourOutcomes)
{
    BhtInterferenceProbe probe(4);

    // Identical histories: sharing had no effect, whatever the
    // predictions were.
    probe.observe(0, 0xA, 0b1010, 0b1010, true, true, false);
    // Histories differ, predictions agree.
    probe.observe(0, 0xA, 0b1010, 0b0010, true, true, true);
    // Predictions differ and the shared one was right.
    probe.observe(0, 0xA, 0b1010, 0b0010, true, false, true);
    // Predictions differ and the shared one was wrong.
    probe.observe(0, 0xA, 0b1010, 0b0010, false, true, true);

    const InterferenceCounters &c = probe.counters();
    EXPECT_EQ(c.predictions, 4u);
    EXPECT_EQ(c.agree, 1u);
    EXPECT_EQ(c.neutral, 1u);
    EXPECT_EQ(c.constructive, 1u);
    EXPECT_EQ(c.destructive, 1u);
    EXPECT_EQ(c.aliased(), 3u);
    EXPECT_DOUBLE_EQ(c.destructivePercent(), 25.0);
}

TEST(InterferenceProbe, ShadowHistoriesStartColdPerBranch)
{
    BhtInterferenceProbe probe(4);
    HistoryRegister &a = probe.shadow(0xA);
    EXPECT_EQ(a.value(), 0u);
    a.push(true);
    // Same branch gets the same register back; a new branch gets a
    // fresh cleared one.
    EXPECT_EQ(probe.shadow(0xA).value(), 1u);
    EXPECT_EQ(probe.shadow(0xB).value(), 0u);
    EXPECT_EQ(probe.shadowedBranches(), 2u);
}

TEST(InterferenceProbe, TopConflictsRanksSharedEntriesOnly)
{
    BhtInterferenceProbe probe(4);

    // Entry 0: two owners, two destructive events.
    probe.observe(0, 0xA, 1, 2, false, true, true);
    probe.observe(0, 0xB, 1, 2, false, true, true);
    // Entry 1: two owners ping-ponging, one destructive event.
    probe.observe(1, 0xC, 1, 2, false, true, true);
    probe.observe(1, 0xD, 1, 1, true, true, true);
    probe.observe(1, 0xC, 1, 1, true, true, true);
    // Entry 2: single owner -- never a conflict, however busy.
    probe.observe(2, 0xE, 1, 2, false, true, true);

    std::vector<EntryConflict> top = probe.topConflicts(8);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].entry, 0u);
    EXPECT_EQ(top[0].destructive, 2u);
    EXPECT_EQ(top[0].branches, 2u);
    EXPECT_EQ(top[1].entry, 1u);
    EXPECT_EQ(top[1].owner_switches, 2u);

    // The budget truncates the ranking.
    EXPECT_EQ(probe.topConflicts(1).size(), 1u);
}

TEST(InterferenceProbe, ReportJsonCarriesCountersAndTopEntries)
{
    BhtInterferenceProbe probe(4);
    probe.shadow(0xA);
    probe.shadow(0xB);
    probe.observe(3, 0xA, 1, 2, false, true, true);
    probe.observe(3, 0xB, 1, 2, false, true, true);

    obs::JsonValue doc = probe.reportJson("compress/ref", "PAg", 4);
    EXPECT_EQ(doc.find("scope")->asString(), "compress/ref");
    EXPECT_EQ(doc.find("predictor")->asString(), "PAg");
    EXPECT_EQ(doc.find("predictions")->asUint(), 2u);
    EXPECT_EQ(doc.find("destructive")->asUint(), 2u);
    EXPECT_DOUBLE_EQ(doc.find("destructive_percent")->asDouble(),
                     100.0);
    EXPECT_EQ(doc.find("shadowed_branches")->asUint(), 2u);
    const obs::JsonValue *top = doc.find("top_entries");
    ASSERT_NE(top, nullptr);
    ASSERT_TRUE(top->isArray());
    ASSERT_EQ(top->size(), 1u);
    EXPECT_EQ(top->at(0).find("entry")->asUint(), 3u);
    EXPECT_EQ(top->at(0).find("destructive")->asUint(), 2u);
}

// ------------------------------------------------------- on a live PAg

namespace
{

/** Deterministic multi-branch stream that aliases in a tiny BHT. */
std::vector<std::pair<BranchPc, bool>>
aliasingStream(int length)
{
    // Two opposite-bias branches colliding in a 1-entry BHT, in a
    // pseudo-random order: the shared history mixes both branches'
    // outcomes into noisy patterns, while each private history is a
    // constant the shared PHT could predict perfectly.  (A strictly
    // alternating order would NOT destruct -- it gives each branch a
    // unique, learnable shared pattern.)
    std::vector<std::pair<BranchPc, bool>> out;
    std::uint32_t x = 12345;
    for (int i = 0; i < length; ++i) {
        x = x * 1664525u + 1013904223u;
        bool pick_a = (x >> 16) & 1;
        out.emplace_back(pick_a ? 0x400000 : 0x400008, pick_a);
    }
    return out;
}

} // namespace

TEST(InterferenceProbe, DetectsDestructionUnderForcedAliasing)
{
    PAgPredictor pag(std::make_unique<ModuloIndexer>(1, 3), 4, 64);
    pag.enableInterferenceProbe();
    for (auto [pc, taken] : aliasingStream(400)) {
        pag.predict(pc);
        pag.update(pc, taken);
    }
    const BhtInterferenceProbe *probe = pag.interferenceProbe();
    ASSERT_NE(probe, nullptr);
    EXPECT_EQ(probe->counters().predictions, 400u);
    EXPECT_GT(probe->counters().aliased(), 0u);
    EXPECT_GT(probe->counters().destructive, 0u);
    EXPECT_EQ(probe->shadowedBranches(), 2u);

    std::vector<EntryConflict> top = probe->topConflicts(4);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].entry, 0u);
    EXPECT_EQ(top[0].branches, 2u);

    // reset() clears the probe along with the tables.
    pag.reset();
    ASSERT_NE(pag.interferenceProbe(), nullptr);
    EXPECT_EQ(pag.interferenceProbe()->counters().predictions, 0u);
}

TEST(InterferenceProbe, ProbeIsPassive)
{
    // The probed and unprobed predictor must produce byte-identical
    // prediction streams -- the probe only watches.
    PAgPredictor plain(std::make_unique<ModuloIndexer>(4, 3), 6, 64);
    PAgPredictor probed(std::make_unique<ModuloIndexer>(4, 3), 6, 64);
    probed.enableInterferenceProbe();

    std::vector<std::pair<BranchPc, bool>> stream;
    for (int i = 0; i < 500; ++i) {
        BranchPc pc = 0x400000 + 8 * (i % 7);
        bool taken = ((i * 2654435761u) >> 3) & 1;
        stream.emplace_back(pc, taken);
    }
    for (auto [pc, taken] : stream) {
        EXPECT_EQ(plain.predict(pc), probed.predict(pc));
        plain.update(pc, taken);
        probed.update(pc, taken);
    }
    EXPECT_GT(probed.interferenceProbe()->counters().predictions, 0u);
}

// --------------------------------------------------- the headline claim

namespace
{

/** Replays a trace through two probed predictors simultaneously. */
struct DualSink final : TraceSink
{
    Predictor &first;
    Predictor &second;

    DualSink(Predictor &f, Predictor &s) : first(f), second(s) {}

    void
    onBranch(const BranchRecord &record) override
    {
        first.predict(record.pc);
        first.update(record.pc, record.taken);
        second.predict(record.pc);
        second.update(record.pc, record.taken);
    }
};

} // namespace

TEST(InterferenceProbe, AllocationEliminatesDestructiveAliasing)
{
    // The acceptance claim of the attribution layer: on the same
    // trace, the allocation-indexed PAg hosts strictly fewer
    // destructive-aliasing events than the PC-indexed 1024-entry
    // baseline -- the events the allocator explicitly separates.
    Workload w = makeWorkload("gcc", "", 0.05);
    WorkloadTraceSource source = w.source();

    AllocationPipeline pipeline;
    testhelpers::profileRun(pipeline, source);

    PredictorPtr base = makePredictor(paperBaselineSpec());
    PredictorPtr alloc = makePredictor(pipeline.predictorSpec(1024));
    auto *base_pag = dynamic_cast<PAgPredictor *>(base.get());
    auto *alloc_pag = dynamic_cast<PAgPredictor *>(alloc.get());
    ASSERT_NE(base_pag, nullptr);
    ASSERT_NE(alloc_pag, nullptr);
    base_pag->enableInterferenceProbe();
    alloc_pag->enableInterferenceProbe();

    DualSink sink(*base, *alloc);
    source.replay(sink);

    const InterferenceCounters &b =
        base_pag->interferenceProbe()->counters();
    const InterferenceCounters &a =
        alloc_pag->interferenceProbe()->counters();
    EXPECT_EQ(b.predictions, a.predictions);
    EXPECT_GT(b.destructive, 0u);
    EXPECT_LT(a.destructive, b.destructive);
}
