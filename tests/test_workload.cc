/**
 * @file
 * Tests for the synthetic workload engine: behaviour models, program
 * construction and layout, the executor, the random generator's
 * invariants, and the named presets.
 */

#include <cmath>
#include <set>
#include <unordered_map>

#include <gtest/gtest.h>

#include "trace/trace.hh"
#include "trace/trace_stats.hh"
#include "workload/builder.hh"
#include "workload/executor.hh"
#include "workload/generator.hh"
#include "workload/presets.hh"

using namespace bwsa;

// -------------------------------------------------------------- behaviour

TEST(Behavior, BiasedMatchesProbability)
{
    Pcg32 rng(1);
    BranchBehavior b = BranchBehavior::biased(0.8);
    BehaviorState state;
    int taken = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        taken += resolveBranch(b, state, rng);
    EXPECT_NEAR(taken / double(n), 0.8, 0.02);
}

TEST(Behavior, PeriodicCyclesExactly)
{
    Pcg32 rng(2);
    BranchBehavior b = BranchBehavior::periodic(0b0011u, 4);
    BehaviorState state;
    // Pattern is read LSB-first: 1,1,0,0 repeating.
    std::vector<bool> expect{true, true, false, false};
    for (int cycle = 0; cycle < 5; ++cycle)
        for (int i = 0; i < 4; ++i)
            ASSERT_EQ(resolveBranch(b, state, rng), expect[i]);
}

TEST(Behavior, MarkovIsSticky)
{
    Pcg32 rng(3);
    BranchBehavior b = BranchBehavior::markov(0.95);
    BehaviorState state;
    bool prev = resolveBranch(b, state, rng);
    int repeats = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        bool cur = resolveBranch(b, state, rng);
        repeats += (cur == prev);
        prev = cur;
    }
    EXPECT_NEAR(repeats / double(n), 0.95, 0.01);
}

TEST(Behavior, DataHashIsDeterministicPerInstance)
{
    // Two independent states with the same salt replay identically,
    // regardless of RNG state -- data-dependent, not random.
    Pcg32 rng_a(4), rng_b(999);
    BranchBehavior b = BranchBehavior::dataHash(0xfeed, 0.5);
    BehaviorState sa, sb;
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(resolveBranch(b, sa, rng_a),
                  resolveBranch(b, sb, rng_b));
}

TEST(Behavior, DataHashThresholdControlsRate)
{
    Pcg32 rng(5);
    BranchBehavior b = BranchBehavior::dataHash(0x1234, 0.3);
    BehaviorState state;
    int taken = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        taken += resolveBranch(b, state, rng);
    EXPECT_NEAR(taken / double(n), 0.3, 0.02);
}

TEST(Behavior, InputModeConstantWithinRun)
{
    Pcg32 rng(6);
    BranchBehavior b = BranchBehavior::inputMode(7);
    BehaviorState state;
    bool first = resolveBranch(b, state, rng, 42);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(resolveBranch(b, state, rng, 42), first);
}

TEST(Behavior, InputModeVariesAcrossSeeds)
{
    Pcg32 rng(7);
    BehaviorState state;
    // Across many bits and two seeds, both outcomes must appear.
    int differing = 0;
    for (unsigned bit = 0; bit < 32; ++bit) {
        BranchBehavior b = BranchBehavior::inputMode(bit);
        if (resolveBranch(b, state, rng, 1) !=
            resolveBranch(b, state, rng, 2))
            ++differing;
    }
    EXPECT_GT(differing, 5);
    EXPECT_LT(differing, 27);
}

// ---------------------------------------------------------------- program

TEST(Program, FinalizeAssignsDenseIdsAndUniquePcs)
{
    Program p;
    p.addProcedure(
        "main",
        seqOf(ifOf(BranchBehavior::biased(0.5), compute(2)),
              loopOf(3.0, 10,
                     seqOf(ifOf(BranchBehavior::biased(0.9),
                                compute(1)),
                           compute(2))),
              switchOf({1.0, 1.0, 1.0},
                       [] {
                           std::vector<StmtPtr> cases;
                           cases.push_back(compute(1));
                           cases.push_back(compute(2));
                           cases.push_back(compute(3));
                           return cases;
                       }())));
    p.finalize();

    // 1 if + 1 loop backedge + 1 inner if + 2 switch cascade = 5.
    EXPECT_EQ(p.staticBranchCount(), 5u);

    std::set<BranchPc> pcs;
    for (BranchId id = 0; id < p.staticBranchCount(); ++id) {
        const StaticBranchInfo &info = p.branchInfo(id);
        EXPECT_GE(info.pc, text_base);
        EXPECT_EQ(info.pc % insn_size, 0u);
        pcs.insert(info.pc);
    }
    EXPECT_EQ(pcs.size(), 5u); // all distinct
    EXPECT_GT(p.staticInstructions(), 0u);
}

TEST(Program, RolesAreRecorded)
{
    Program p;
    p.addProcedure("main",
                   seqOf(ifOf(BranchBehavior::biased(0.5), compute(1)),
                         loopOf(2.0, 4, compute(1))));
    p.finalize();
    ASSERT_EQ(p.staticBranchCount(), 2u);
    EXPECT_EQ(p.branchInfo(0).role, BranchRole::IfBranch);
    EXPECT_EQ(p.branchInfo(1).role, BranchRole::LoopBackedge);
}

TEST(ProgramDeath, RejectsCallCycles)
{
    auto build_cycle = [] {
        Program p;
        p.addProcedure("a", seqOf(callOf(1), compute(1)));
        p.addProcedure("b", seqOf(callOf(0), compute(1)));
        p.finalize();
    };
    EXPECT_EXIT(build_cycle(), ::testing::ExitedWithCode(1),
                "recursive call cycle");
}

TEST(ProgramDeath, RejectsDanglingCallee)
{
    auto build_dangling = [] {
        Program p;
        p.addProcedure("main", seqOf(callOf(5), compute(1)));
        p.finalize();
    };
    EXPECT_EXIT(build_dangling(), ::testing::ExitedWithCode(1),
                "nonexistent procedure");
}

// --------------------------------------------------------------- executor

namespace
{

Program
makeLoopProgram()
{
    Program p;
    p.addProcedure(
        "main",
        fixedLoopOf(10, seqOf(compute(3),
                              ifOf(BranchBehavior::biased(1.0),
                                   compute(5)))));
    p.finalize();
    return p;
}

} // namespace

TEST(Executor, DeterministicAcrossRuns)
{
    Program p = makeLoopProgram();
    ExecutorConfig config;
    config.input_seed = 5;

    MemoryTrace a, b;
    SyntheticExecutor(p, config).run(a);
    SyntheticExecutor(p, config).run(b);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]);
}

TEST(Executor, FixedLoopEmitsExactBackedges)
{
    Program p = makeLoopProgram();
    MemoryTrace trace;
    ExecutorConfig config;
    ExecutionResult result = SyntheticExecutor(p, config).run(trace);

    // 10 iterations: 10 if branches + 10 backedges.
    EXPECT_EQ(result.dynamic_branches, 20u);
    EXPECT_EQ(trace.size(), 20u);
    EXPECT_FALSE(result.truncated);

    // Backedge taken on all but the last iteration.
    BranchPc backedge = p.branchInfo(1).pc;
    int backedge_taken = 0, backedge_seen = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (trace[i].pc == backedge) {
            ++backedge_seen;
            backedge_taken += trace[i].taken;
        }
    }
    EXPECT_EQ(backedge_seen, 10);
    EXPECT_EQ(backedge_taken, 9);
}

TEST(Executor, TimestampsStrictlyAscend)
{
    Program p = makeLoopProgram();
    MemoryTrace trace;
    SyntheticExecutor(p, ExecutorConfig{}).run(trace);
    for (std::size_t i = 1; i < trace.size(); ++i)
        ASSERT_GT(trace[i].timestamp, trace[i - 1].timestamp);
}

TEST(Executor, BudgetTruncates)
{
    Program p;
    p.addProcedure("main", fixedLoopOf(1000000, compute(10)));
    p.finalize();

    ExecutorConfig config;
    config.max_instructions = 5000;
    MemoryTrace trace;
    ExecutionResult result = SyntheticExecutor(p, config).run(trace);
    EXPECT_TRUE(result.truncated);
    EXPECT_GE(result.instructions, 5000u);
    EXPECT_LT(result.instructions, 5200u); // stops promptly
}

TEST(Executor, IfBranchSemantics)
{
    // Taken means the then-body is skipped: a 100%-taken guard must
    // never execute its body, which we detect via instruction counts.
    Program p;
    p.addProcedure("main",
                   seqOf(ifOf(BranchBehavior::biased(1.0),
                              compute(1000))));
    p.finalize();
    MemoryTrace trace;
    ExecutionResult r = SyntheticExecutor(p, ExecutorConfig{}).run(trace);
    EXPECT_LT(r.instructions, 100u);
    ASSERT_EQ(trace.size(), 1u);
    EXPECT_TRUE(trace[0].taken);
}

TEST(Executor, SwitchCascadeSelectsOneCase)
{
    // Weight mass on case 1: cascade emits branch0 (not taken) then
    // branch1 (taken) on nearly every visit.
    Program p;
    std::vector<StmtPtr> cases;
    cases.push_back(compute(1));
    cases.push_back(compute(2));
    cases.push_back(compute(3));
    p.addProcedure("main",
                   fixedLoopOf(100, switchOf({0.0, 1.0, 0.0},
                                             std::move(cases))));
    p.finalize();

    MemoryTrace trace;
    SyntheticExecutor(p, ExecutorConfig{}).run(trace);

    std::unordered_map<BranchPc, std::pair<int, int>> seen;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        auto &[count, taken] = seen[trace[i].pc];
        ++count;
        taken += trace[i].taken;
    }
    // 2 cascade branches + backedge.
    ASSERT_EQ(seen.size(), 3u);
    BranchPc b0 = p.branchInfo(0).pc;
    BranchPc b1 = p.branchInfo(1).pc;
    EXPECT_EQ(seen[b0].second, 0);            // case 0 never chosen
    EXPECT_EQ(seen[b1].first, seen[b1].second); // case 1 always
}

TEST(Executor, ReplayableSourceIsStable)
{
    Program p = makeLoopProgram();
    WorkloadTraceSource source(p, ExecutorConfig{});
    MemoryTrace a, b;
    source.replay(a);
    source.replay(b);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]);
}

TEST(Executor, InputSeedChangesTrace)
{
    WorkloadParams params;
    params.num_procedures = 4;
    params.structure_seed = 77;
    Program p = generateProgram(params);

    ExecutorConfig ca, cb;
    ca.input_seed = 1;
    cb.input_seed = 2;
    ca.max_instructions = cb.max_instructions = 50000;

    TraceStatsCollector sa, sb;
    SyntheticExecutor(p, ca).run(sa);
    SyntheticExecutor(p, cb).run(sb);
    // Same program, different inputs: traces differ in dynamics.
    EXPECT_NE(sa.dynamicBranches(), sb.dynamicBranches());
}

// -------------------------------------------------------------- generator

class GeneratorSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(GeneratorSeeds, ProducesValidCalibratedPrograms)
{
    WorkloadParams params;
    params.structure_seed = GetParam();
    params.num_procedures = 12;
    params.num_phases = 3;
    params.procs_per_phase = 2;
    params.branches_per_proc_min = 10;
    params.branches_per_proc_max = 30;

    GeneratedProgram g = generateProgramWithInfo(params);
    EXPECT_TRUE(g.program.finalized());
    EXPECT_EQ(g.program.procedureCount(), 12u);

    // Branch budget: at least min per procedure (main adds more).
    EXPECT_GE(g.program.staticBranchCount(),
              11u * params.branches_per_proc_min);

    // The cost model must produce a sane, bounded pass estimate.
    EXPECT_GT(g.expected_pass_instructions, 1000u);
    EXPECT_LT(g.expected_pass_instructions, 100'000'000u);

    // Same seed regenerates the identical program.
    GeneratedProgram g2 = generateProgramWithInfo(params);
    EXPECT_EQ(g.program.staticBranchCount(),
              g2.program.staticBranchCount());
    EXPECT_EQ(g.expected_pass_instructions,
              g2.expected_pass_instructions);
    for (BranchId id = 0; id < g.program.staticBranchCount(); ++id)
        ASSERT_EQ(g.program.branchInfo(id).pc,
                  g2.program.branchInfo(id).pc);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeeds,
                         ::testing::Values(1u, 7u, 42u, 1234u, 777u));

TEST(Generator, PassEstimateTracksActualCost)
{
    WorkloadParams params;
    params.structure_seed = 99;
    params.num_procedures = 10;
    params.num_phases = 3;
    params.procs_per_phase = 2;
    params.phase_iterations = 20;

    GeneratedProgram g = generateProgramWithInfo(params);
    ExecutorConfig config;
    config.max_instructions = 4 * g.expected_pass_instructions;

    TraceStatsCollector stats;
    ExecutionResult r =
        SyntheticExecutor(g.program, config).run(stats);

    // The run is budget-bounded (effectively infinite outer loop) and
    // the estimate is within a factor ~3 of reality.
    EXPECT_TRUE(r.truncated);
    (void)stats;
}

// ---------------------------------------------------------------- presets

TEST(Presets, AllNamesResolve)
{
    std::vector<std::string> names = presetNames();
    EXPECT_EQ(names.size(), 13u);
    for (const std::string &name : names) {
        EXPECT_TRUE(isPresetName(name));
        WorkloadParams params = presetParams(name);
        EXPECT_EQ(params.name, name);
        EXPECT_FALSE(presetInputs(name).empty());
    }
    EXPECT_FALSE(isPresetName("nonexistent"));
}

TEST(Presets, TwoInputBenchmarksHaveTwoInputs)
{
    EXPECT_EQ(presetInputs("perl").size(), 2u);
    EXPECT_EQ(presetInputs("ss").size(), 2u);
    EXPECT_EQ(presetInputs("perl")[0].label, "a");
    EXPECT_EQ(presetInputs("perl")[1].label, "b");
}

TEST(Presets, MakeWorkloadRunsWithinBudget)
{
    // Down-scaled compress run: executes, truncates at the budget,
    // and exercises a plausible branch population.
    Workload w = makeWorkload("compress", "", 0.2);
    EXPECT_EQ(w.name, "compress");
    EXPECT_GT(w.config.max_instructions, 0u);

    TraceStatsCollector stats;
    WorkloadTraceSource src = w.source();
    src.replay(stats);
    EXPECT_GT(stats.dynamicBranches(), 1000u);
    EXPECT_GT(stats.staticBranches(), 20u);
    EXPECT_LE(stats.lastTimestamp(),
              w.config.max_instructions + 100);
}

TEST(Presets, InputSetsProduceDifferentRuns)
{
    Workload a = makeWorkload("ss", "a", 0.05);
    Workload b = makeWorkload("ss", "b", 0.05);
    EXPECT_EQ(a.config.max_instructions, b.config.max_instructions);
    EXPECT_NE(a.config.input_seed, b.config.input_seed);

    TraceStatsCollector sa, sb;
    a.source().replay(sa);
    b.source().replay(sb);
    EXPECT_NE(sa.dynamicBranches(), sb.dynamicBranches());
}

TEST(PresetsDeath, UnknownPresetOrInputIsFatal)
{
    EXPECT_EXIT(makeWorkload("quake"), ::testing::ExitedWithCode(1),
                "unknown workload preset");
    EXPECT_EXIT(makeWorkload("compress", "zzz"),
                ::testing::ExitedWithCode(1), "no input set");
}
