/**
 * @file
 * Tests for the bounded time-series layer: window accumulation,
 * budget-driven downsampling, out-of-order samples, the registry's
 * enable/disable contract, JSON/Chrome-trace export, and the
 * windowed working-set sampler.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/timeseries.hh"

using namespace bwsa::obs;

// ---------------------------------------------------------- TimeSeries

TEST(TimeSeries, AccumulatesSamplesIntoFixedWindows)
{
    TimeSeries series("s", 100, 64);
    series.record(0, 2.0);
    series.record(99, 4.0);  // same window as ts=0
    series.record(100, 8.0); // next window

    ASSERT_EQ(series.points().size(), 2u);
    const SeriesPoint &w0 = series.points()[0];
    EXPECT_EQ(w0.start, 0u);
    EXPECT_EQ(w0.weight, 2u);
    EXPECT_DOUBLE_EQ(w0.sum, 6.0);
    EXPECT_DOUBLE_EQ(w0.mean(), 3.0);
    EXPECT_DOUBLE_EQ(w0.min, 2.0);
    EXPECT_DOUBLE_EQ(w0.max, 4.0);

    const SeriesPoint &w1 = series.points()[1];
    EXPECT_EQ(w1.start, 100u);
    EXPECT_EQ(w1.weight, 1u);
    EXPECT_DOUBLE_EQ(w1.mean(), 8.0);

    EXPECT_EQ(series.totalWeight(), 3u);
    EXPECT_EQ(series.windowWidth(), 100u);
    EXPECT_EQ(series.downsamples(), 0u);
}

TEST(TimeSeries, RatioSamplesMakeWindowMeanARate)
{
    // The misprediction-rate idiom: one 0/1 sample per branch.
    TimeSeries series("rate", 10, 64);
    for (int i = 0; i < 10; ++i)
        series.record(static_cast<std::uint64_t>(i), i < 3 ? 1.0 : 0.0);
    ASSERT_EQ(series.points().size(), 1u);
    EXPECT_DOUBLE_EQ(series.points()[0].mean(), 0.3);
}

TEST(TimeSeries, EmptyWindowsAreOmitted)
{
    TimeSeries series("gaps", 10, 64);
    series.record(5, 1.0);
    series.record(95, 1.0); // windows 10..80 never materialize
    ASSERT_EQ(series.points().size(), 2u);
    EXPECT_EQ(series.points()[0].start, 0u);
    EXPECT_EQ(series.points()[1].start, 90u);
}

TEST(TimeSeries, DownsamplesWhenBudgetExceeded)
{
    TimeSeries series("ds", 10, 4);
    // 8 consecutive windows against a 4-point budget: two pair-merge
    // passes, quadrupling the window width.
    for (std::uint64_t ts = 0; ts < 80; ts += 10)
        series.record(ts, 1.0);

    EXPECT_GE(series.downsamples(), 1u);
    EXPECT_LE(series.points().size(), 4u);
    EXPECT_EQ(series.windowWidth(), 10u << series.downsamples());

    // Mergers preserve mass: total weight and sum survive.
    EXPECT_EQ(series.totalWeight(), 8u);
    std::uint64_t weight = 0;
    double sum = 0.0;
    for (const SeriesPoint &p : series.points()) {
        weight += p.weight;
        sum += p.sum;
        EXPECT_EQ(p.start % series.windowWidth(), 0u);
    }
    EXPECT_EQ(weight, 8u);
    EXPECT_DOUBLE_EQ(sum, 8.0);
}

TEST(TimeSeries, BoundedForLongTraces)
{
    // An 8M-instruction trace with one sample per 1k instructions
    // stays within the point budget however long it runs.
    TimeSeries series("long", 65536, 512);
    for (std::uint64_t ts = 0; ts < 8'000'000; ts += 1000)
        series.record(ts, 1.0);
    EXPECT_LE(series.points().size(), 512u);
    EXPECT_EQ(series.totalWeight(), 8000u);
}

TEST(TimeSeries, OutOfOrderTimestampsFindTheirWindow)
{
    // Sharded replays publish ranges that can interleave backwards.
    TimeSeries series("ooo", 10, 64);
    series.record(50, 1.0);
    series.record(5, 2.0);  // behind the hot window
    series.record(25, 3.0); // in the gap
    series.record(7, 4.0);  // merges into the existing ts=5 window

    ASSERT_EQ(series.points().size(), 3u);
    EXPECT_EQ(series.points()[0].start, 0u);
    EXPECT_EQ(series.points()[0].weight, 2u);
    EXPECT_DOUBLE_EQ(series.points()[0].sum, 6.0);
    EXPECT_EQ(series.points()[1].start, 20u);
    EXPECT_EQ(series.points()[2].start, 50u);
}

TEST(TimeSeries, ToJsonCarriesCompactPointArrays)
{
    TimeSeries series("json", 100, 64);
    series.record(0, 1.0);
    series.record(150, 3.0);
    JsonValue doc = series.toJson();
    EXPECT_EQ(doc.find("name")->asString(), "json");
    EXPECT_EQ(doc.find("window")->asUint(), 100u);
    const JsonValue *points = doc.find("points");
    ASSERT_NE(points, nullptr);
    ASSERT_TRUE(points->isArray());
    ASSERT_EQ(points->size(), 2u);
    // [start, weight, mean, min, max]
    ASSERT_EQ(points->at(0).size(), 5u);
    EXPECT_EQ(points->at(1).at(0).asUint(), 100u);
    EXPECT_EQ(points->at(1).at(1).asUint(), 1u);
    EXPECT_DOUBLE_EQ(points->at(1).at(2).asDouble(), 3.0);
}

TEST(TimeSeriesDeath, RejectsDegenerateGeometry)
{
    EXPECT_DEATH(TimeSeries("bad", 0, 16), "width");
    EXPECT_DEATH(TimeSeries("bad", 16, 1), "budget");
}

// ------------------------------------------------- TimeSeriesRegistry

TEST(TimeSeriesRegistry, DisabledRegistryHandsOutNothing)
{
    TimeSeriesRegistry registry;
    EXPECT_FALSE(registry.enabled());
    EXPECT_EQ(registry.series("a"), nullptr);
    EXPECT_EQ(registry.seriesCount(), 0u);

    registry.setEnabled(true);
    TimeSeries *a = registry.series("a");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(registry.series("a"), a); // same series on re-request
    EXPECT_EQ(registry.seriesCount(), 1u);

    // Series created while enabled survive a later disable (the run
    // report still exports them); only creation is gated.
    registry.setEnabled(false);
    EXPECT_EQ(registry.series("b"), nullptr);
    EXPECT_EQ(registry.find("a"), a);
    EXPECT_EQ(registry.seriesCount(), 1u);
}

TEST(TimeSeriesRegistry, DefaultsConfigureNewSeries)
{
    TimeSeriesRegistry registry;
    registry.configureDefaults(4096, 16);
    registry.setEnabled(true);
    EXPECT_EQ(registry.defaultWidth(), 4096u);
    TimeSeries *s = registry.series("s");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->windowWidth(), 4096u);
}

TEST(TimeSeriesRegistry, ClearDropsSeries)
{
    TimeSeriesRegistry registry;
    registry.setEnabled(true);
    registry.series("gone");
    registry.clear();
    EXPECT_EQ(registry.seriesCount(), 0u);
    EXPECT_EQ(registry.find("gone"), nullptr);
    EXPECT_TRUE(registry.enabled()); // clear() keeps the flag
}

TEST(TimeSeriesRegistry, ChromeCounterEventsOnePerWindow)
{
    TimeSeriesRegistry registry;
    registry.configureDefaults(100, 16);
    registry.setEnabled(true);
    TimeSeries *s = registry.series("bench/miss_rate");
    s->record(0, 1.0);
    s->record(250, 0.0);

    JsonValue events = registry.chromeCounterEvents();
    ASSERT_TRUE(events.isArray());
    ASSERT_EQ(events.size(), 2u);
    const JsonValue &first = events.at(0);
    EXPECT_EQ(first.find("ph")->asString(), "C");
    EXPECT_EQ(first.find("name")->asString(), "bench/miss_rate");
    EXPECT_DOUBLE_EQ(first.find("ts")->asDouble(), 0.0);
    ASSERT_NE(first.find("args"), nullptr);
    EXPECT_DOUBLE_EQ(first.find("args")->find("mean")->asDouble(),
                     1.0);
}

// ------------------------------------------------- WindowedSetSampler

TEST(WindowedSetSampler, PublishesDistinctCountPerWindow)
{
    TimeSeries size("size", 100, 64);
    WindowedSetSampler sampler(&size, nullptr, 100);

    sampler.sample(0xA, 0);
    sampler.sample(0xB, 10);
    sampler.sample(0xA, 20); // duplicate key, same window
    sampler.sample(0xC, 150);
    sampler.finish();

    EXPECT_EQ(sampler.windowsClosed(), 2u);
    ASSERT_EQ(size.points().size(), 2u);
    EXPECT_DOUBLE_EQ(size.points()[0].mean(), 2.0);
    EXPECT_DOUBLE_EQ(size.points()[1].mean(), 1.0);
}

TEST(WindowedSetSampler, JaccardChurnAgainstPreviousWindow)
{
    TimeSeries churn("jaccard", 100, 64);
    WindowedSetSampler sampler(nullptr, &churn, 100);

    // Window 0: {A, B}.  Window 1: {B, C} -> Jaccard 1/3.
    // Window 2: {B, C} -> Jaccard 1.  Window 3: {D} -> Jaccard 0.
    sampler.sample(0xA, 0);
    sampler.sample(0xB, 1);
    sampler.sample(0xB, 100);
    sampler.sample(0xC, 101);
    sampler.sample(0xB, 200);
    sampler.sample(0xC, 201);
    sampler.sample(0xD, 300);
    sampler.finish();

    // No churn point for the first window (nothing to compare).
    ASSERT_EQ(churn.points().size(), 3u);
    EXPECT_DOUBLE_EQ(churn.points()[0].mean(), 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(churn.points()[1].mean(), 1.0);
    EXPECT_DOUBLE_EQ(churn.points()[2].mean(), 0.0);
}

TEST(WindowedSetSampler, FinishIsIdempotentAndSkipsEmptyStreams)
{
    TimeSeries size("size", 100, 64);
    {
        WindowedSetSampler sampler(&size, nullptr, 100);
        sampler.finish(); // no samples: publishes nothing
        EXPECT_EQ(sampler.windowsClosed(), 0u);
    }
    EXPECT_TRUE(size.points().empty());

    WindowedSetSampler sampler(&size, nullptr, 100);
    sampler.sample(0xA, 0);
    sampler.finish();
    sampler.finish(); // second flush is a no-op
    EXPECT_EQ(sampler.windowsClosed(), 1u);
    EXPECT_EQ(size.totalWeight(), 1u);
}

TEST(WindowedSetSampler, FinishFlushesFinalPartialWindow)
{
    TimeSeries size("size", 100, 64);
    TimeSeries churn("jaccard", 100, 64);
    WindowedSetSampler sampler(&size, &churn, 100);

    // Window 0 closes naturally: {A, B}.  The tail window [100, 200)
    // only ever sees samples up to ts=130 -- a partial window that
    // nothing but finish() can close.
    sampler.sample(0xA, 0);
    sampler.sample(0xB, 99);
    sampler.sample(0xA, 100);
    sampler.sample(0xC, 130);

    // Before the flush only the naturally closed window published.
    EXPECT_EQ(sampler.windowsClosed(), 1u);
    ASSERT_EQ(size.points().size(), 1u);
    EXPECT_TRUE(churn.points().empty());

    sampler.finish();
    EXPECT_EQ(sampler.windowsClosed(), 2u);
    ASSERT_EQ(size.points().size(), 2u);
    EXPECT_EQ(size.points()[1].start, 100u);
    EXPECT_DOUBLE_EQ(size.points()[1].mean(), 2.0); // {A, C}
    // The partial window still gets its churn point: {A,C} vs {A,B}.
    ASSERT_EQ(churn.points().size(), 1u);
    EXPECT_DOUBLE_EQ(churn.points()[0].mean(), 1.0 / 3.0);
}
