/**
 * @file
 * Shared helpers for the test binaries.
 */

#ifndef BWSA_TESTS_TEST_HELPERS_HH
#define BWSA_TESTS_TEST_HELPERS_HH

#include "core/pipeline.hh"

namespace bwsa::testhelpers
{

/**
 * One serial single-source profile run driven through the
 * ProfileSession API: statistics pass, commit, interleave pass,
 * finish.  The tests' shorthand for "profile this trace into the
 * pipeline" now that the deprecated AllocationPipeline::addProfile
 * wrapper is gone.
 */
inline void
profileRun(AllocationPipeline &pipeline, const TraceSource &source)
{
    ProfileSession session(pipeline);
    session.addStats(source);
    session.commit();
    session.addInterleave(source);
    session.finish();
}

} // namespace bwsa::testhelpers

#endif // BWSA_TESTS_TEST_HELPERS_HH
