# Empty compiler generated dependencies file for working_set_explorer.
# This may be replaced when dependencies are built.
