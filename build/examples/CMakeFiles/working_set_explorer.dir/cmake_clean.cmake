file(REMOVE_RECURSE
  "CMakeFiles/working_set_explorer.dir/working_set_explorer.cpp.o"
  "CMakeFiles/working_set_explorer.dir/working_set_explorer.cpp.o.d"
  "working_set_explorer"
  "working_set_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/working_set_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
