# Empty compiler generated dependencies file for predictor_zoo.
# This may be replaced when dependencies are built.
