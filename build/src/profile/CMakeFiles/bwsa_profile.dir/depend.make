# Empty dependencies file for bwsa_profile.
# This may be replaced when dependencies are built.
