
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profile/conflict_graph.cc" "src/profile/CMakeFiles/bwsa_profile.dir/conflict_graph.cc.o" "gcc" "src/profile/CMakeFiles/bwsa_profile.dir/conflict_graph.cc.o.d"
  "/root/repo/src/profile/interleave.cc" "src/profile/CMakeFiles/bwsa_profile.dir/interleave.cc.o" "gcc" "src/profile/CMakeFiles/bwsa_profile.dir/interleave.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/bwsa_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bwsa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
