file(REMOVE_RECURSE
  "libbwsa_profile.a"
)
