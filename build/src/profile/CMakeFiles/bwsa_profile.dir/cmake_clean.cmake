file(REMOVE_RECURSE
  "CMakeFiles/bwsa_profile.dir/conflict_graph.cc.o"
  "CMakeFiles/bwsa_profile.dir/conflict_graph.cc.o.d"
  "CMakeFiles/bwsa_profile.dir/interleave.cc.o"
  "CMakeFiles/bwsa_profile.dir/interleave.cc.o.d"
  "libbwsa_profile.a"
  "libbwsa_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwsa_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
