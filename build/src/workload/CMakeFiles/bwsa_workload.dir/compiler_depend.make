# Empty compiler generated dependencies file for bwsa_workload.
# This may be replaced when dependencies are built.
