
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/behavior.cc" "src/workload/CMakeFiles/bwsa_workload.dir/behavior.cc.o" "gcc" "src/workload/CMakeFiles/bwsa_workload.dir/behavior.cc.o.d"
  "/root/repo/src/workload/executor.cc" "src/workload/CMakeFiles/bwsa_workload.dir/executor.cc.o" "gcc" "src/workload/CMakeFiles/bwsa_workload.dir/executor.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/workload/CMakeFiles/bwsa_workload.dir/generator.cc.o" "gcc" "src/workload/CMakeFiles/bwsa_workload.dir/generator.cc.o.d"
  "/root/repo/src/workload/presets.cc" "src/workload/CMakeFiles/bwsa_workload.dir/presets.cc.o" "gcc" "src/workload/CMakeFiles/bwsa_workload.dir/presets.cc.o.d"
  "/root/repo/src/workload/program.cc" "src/workload/CMakeFiles/bwsa_workload.dir/program.cc.o" "gcc" "src/workload/CMakeFiles/bwsa_workload.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/bwsa_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bwsa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
