file(REMOVE_RECURSE
  "libbwsa_workload.a"
)
