file(REMOVE_RECURSE
  "CMakeFiles/bwsa_workload.dir/behavior.cc.o"
  "CMakeFiles/bwsa_workload.dir/behavior.cc.o.d"
  "CMakeFiles/bwsa_workload.dir/executor.cc.o"
  "CMakeFiles/bwsa_workload.dir/executor.cc.o.d"
  "CMakeFiles/bwsa_workload.dir/generator.cc.o"
  "CMakeFiles/bwsa_workload.dir/generator.cc.o.d"
  "CMakeFiles/bwsa_workload.dir/presets.cc.o"
  "CMakeFiles/bwsa_workload.dir/presets.cc.o.d"
  "CMakeFiles/bwsa_workload.dir/program.cc.o"
  "CMakeFiles/bwsa_workload.dir/program.cc.o.d"
  "libbwsa_workload.a"
  "libbwsa_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwsa_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
