file(REMOVE_RECURSE
  "libbwsa_core.a"
)
