file(REMOVE_RECURSE
  "CMakeFiles/bwsa_core.dir/allocation.cc.o"
  "CMakeFiles/bwsa_core.dir/allocation.cc.o.d"
  "CMakeFiles/bwsa_core.dir/classification.cc.o"
  "CMakeFiles/bwsa_core.dir/classification.cc.o.d"
  "CMakeFiles/bwsa_core.dir/pipeline.cc.o"
  "CMakeFiles/bwsa_core.dir/pipeline.cc.o.d"
  "CMakeFiles/bwsa_core.dir/working_set.cc.o"
  "CMakeFiles/bwsa_core.dir/working_set.cc.o.d"
  "libbwsa_core.a"
  "libbwsa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwsa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
