# Empty dependencies file for bwsa_core.
# This may be replaced when dependencies are built.
