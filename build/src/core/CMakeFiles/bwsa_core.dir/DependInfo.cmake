
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allocation.cc" "src/core/CMakeFiles/bwsa_core.dir/allocation.cc.o" "gcc" "src/core/CMakeFiles/bwsa_core.dir/allocation.cc.o.d"
  "/root/repo/src/core/classification.cc" "src/core/CMakeFiles/bwsa_core.dir/classification.cc.o" "gcc" "src/core/CMakeFiles/bwsa_core.dir/classification.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/bwsa_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/bwsa_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/working_set.cc" "src/core/CMakeFiles/bwsa_core.dir/working_set.cc.o" "gcc" "src/core/CMakeFiles/bwsa_core.dir/working_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/profile/CMakeFiles/bwsa_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/bwsa_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bwsa_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bwsa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
