file(REMOVE_RECURSE
  "libbwsa_trace.a"
)
