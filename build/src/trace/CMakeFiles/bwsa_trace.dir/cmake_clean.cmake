file(REMOVE_RECURSE
  "CMakeFiles/bwsa_trace.dir/frequency_filter.cc.o"
  "CMakeFiles/bwsa_trace.dir/frequency_filter.cc.o.d"
  "CMakeFiles/bwsa_trace.dir/trace.cc.o"
  "CMakeFiles/bwsa_trace.dir/trace.cc.o.d"
  "CMakeFiles/bwsa_trace.dir/trace_io.cc.o"
  "CMakeFiles/bwsa_trace.dir/trace_io.cc.o.d"
  "CMakeFiles/bwsa_trace.dir/trace_stats.cc.o"
  "CMakeFiles/bwsa_trace.dir/trace_stats.cc.o.d"
  "libbwsa_trace.a"
  "libbwsa_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwsa_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
