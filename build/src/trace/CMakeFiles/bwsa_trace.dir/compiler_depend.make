# Empty compiler generated dependencies file for bwsa_trace.
# This may be replaced when dependencies are built.
