# Empty dependencies file for bwsa_report.
# This may be replaced when dependencies are built.
