file(REMOVE_RECURSE
  "CMakeFiles/bwsa_report.dir/table.cc.o"
  "CMakeFiles/bwsa_report.dir/table.cc.o.d"
  "libbwsa_report.a"
  "libbwsa_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwsa_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
