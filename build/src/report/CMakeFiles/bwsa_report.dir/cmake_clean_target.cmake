file(REMOVE_RECURSE
  "libbwsa_report.a"
)
