# Empty dependencies file for bwsa_sim.
# This may be replaced when dependencies are built.
