file(REMOVE_RECURSE
  "CMakeFiles/bwsa_sim.dir/bpred_sim.cc.o"
  "CMakeFiles/bwsa_sim.dir/bpred_sim.cc.o.d"
  "CMakeFiles/bwsa_sim.dir/cluster_analysis.cc.o"
  "CMakeFiles/bwsa_sim.dir/cluster_analysis.cc.o.d"
  "libbwsa_sim.a"
  "libbwsa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwsa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
