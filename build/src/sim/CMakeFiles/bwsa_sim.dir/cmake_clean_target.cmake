file(REMOVE_RECURSE
  "libbwsa_sim.a"
)
