file(REMOVE_RECURSE
  "CMakeFiles/bwsa_predict.dir/agree.cc.o"
  "CMakeFiles/bwsa_predict.dir/agree.cc.o.d"
  "CMakeFiles/bwsa_predict.dir/bimodal.cc.o"
  "CMakeFiles/bwsa_predict.dir/bimodal.cc.o.d"
  "CMakeFiles/bwsa_predict.dir/factory.cc.o"
  "CMakeFiles/bwsa_predict.dir/factory.cc.o.d"
  "CMakeFiles/bwsa_predict.dir/index_policy.cc.o"
  "CMakeFiles/bwsa_predict.dir/index_policy.cc.o.d"
  "CMakeFiles/bwsa_predict.dir/static_filter.cc.o"
  "CMakeFiles/bwsa_predict.dir/static_filter.cc.o.d"
  "CMakeFiles/bwsa_predict.dir/tournament.cc.o"
  "CMakeFiles/bwsa_predict.dir/tournament.cc.o.d"
  "CMakeFiles/bwsa_predict.dir/twolevel.cc.o"
  "CMakeFiles/bwsa_predict.dir/twolevel.cc.o.d"
  "libbwsa_predict.a"
  "libbwsa_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwsa_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
