
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predict/agree.cc" "src/predict/CMakeFiles/bwsa_predict.dir/agree.cc.o" "gcc" "src/predict/CMakeFiles/bwsa_predict.dir/agree.cc.o.d"
  "/root/repo/src/predict/bimodal.cc" "src/predict/CMakeFiles/bwsa_predict.dir/bimodal.cc.o" "gcc" "src/predict/CMakeFiles/bwsa_predict.dir/bimodal.cc.o.d"
  "/root/repo/src/predict/factory.cc" "src/predict/CMakeFiles/bwsa_predict.dir/factory.cc.o" "gcc" "src/predict/CMakeFiles/bwsa_predict.dir/factory.cc.o.d"
  "/root/repo/src/predict/index_policy.cc" "src/predict/CMakeFiles/bwsa_predict.dir/index_policy.cc.o" "gcc" "src/predict/CMakeFiles/bwsa_predict.dir/index_policy.cc.o.d"
  "/root/repo/src/predict/static_filter.cc" "src/predict/CMakeFiles/bwsa_predict.dir/static_filter.cc.o" "gcc" "src/predict/CMakeFiles/bwsa_predict.dir/static_filter.cc.o.d"
  "/root/repo/src/predict/tournament.cc" "src/predict/CMakeFiles/bwsa_predict.dir/tournament.cc.o" "gcc" "src/predict/CMakeFiles/bwsa_predict.dir/tournament.cc.o.d"
  "/root/repo/src/predict/twolevel.cc" "src/predict/CMakeFiles/bwsa_predict.dir/twolevel.cc.o" "gcc" "src/predict/CMakeFiles/bwsa_predict.dir/twolevel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/bwsa_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bwsa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
