file(REMOVE_RECURSE
  "libbwsa_predict.a"
)
