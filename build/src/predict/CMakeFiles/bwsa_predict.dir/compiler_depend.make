# Empty compiler generated dependencies file for bwsa_predict.
# This may be replaced when dependencies are built.
