# Empty dependencies file for bwsa_util.
# This may be replaced when dependencies are built.
