file(REMOVE_RECURSE
  "CMakeFiles/bwsa_util.dir/cli.cc.o"
  "CMakeFiles/bwsa_util.dir/cli.cc.o.d"
  "CMakeFiles/bwsa_util.dir/logging.cc.o"
  "CMakeFiles/bwsa_util.dir/logging.cc.o.d"
  "CMakeFiles/bwsa_util.dir/random.cc.o"
  "CMakeFiles/bwsa_util.dir/random.cc.o.d"
  "CMakeFiles/bwsa_util.dir/stats.cc.o"
  "CMakeFiles/bwsa_util.dir/stats.cc.o.d"
  "CMakeFiles/bwsa_util.dir/strutil.cc.o"
  "CMakeFiles/bwsa_util.dir/strutil.cc.o.d"
  "libbwsa_util.a"
  "libbwsa_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwsa_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
