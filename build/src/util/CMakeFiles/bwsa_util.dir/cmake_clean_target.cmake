file(REMOVE_RECURSE
  "libbwsa_util.a"
)
