# Empty compiler generated dependencies file for bwsa_bench_common.
# This may be replaced when dependencies are built.
