file(REMOVE_RECURSE
  "../lib/libbwsa_bench_common.a"
  "../lib/libbwsa_bench_common.pdb"
  "CMakeFiles/bwsa_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/bwsa_bench_common.dir/bench_common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwsa_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
