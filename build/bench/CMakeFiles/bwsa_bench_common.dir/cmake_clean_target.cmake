file(REMOVE_RECURSE
  "../lib/libbwsa_bench_common.a"
)
