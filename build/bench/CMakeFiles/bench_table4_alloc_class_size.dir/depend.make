# Empty dependencies file for bench_table4_alloc_class_size.
# This may be replaced when dependencies are built.
