file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bias_cutoff.dir/bench_ablation_bias_cutoff.cc.o"
  "CMakeFiles/bench_ablation_bias_cutoff.dir/bench_ablation_bias_cutoff.cc.o.d"
  "bench_ablation_bias_cutoff"
  "bench_ablation_bias_cutoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bias_cutoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
