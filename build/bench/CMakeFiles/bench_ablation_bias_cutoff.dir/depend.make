# Empty dependencies file for bench_ablation_bias_cutoff.
# This may be replaced when dependencies are built.
