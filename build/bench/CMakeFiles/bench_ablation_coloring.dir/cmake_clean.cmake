file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_coloring.dir/bench_ablation_coloring.cc.o"
  "CMakeFiles/bench_ablation_coloring.dir/bench_ablation_coloring.cc.o.d"
  "bench_ablation_coloring"
  "bench_ablation_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
