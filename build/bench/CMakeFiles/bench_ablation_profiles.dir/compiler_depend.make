# Empty compiler generated dependencies file for bench_ablation_profiles.
# This may be replaced when dependencies are built.
