file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_profiles.dir/bench_ablation_profiles.cc.o"
  "CMakeFiles/bench_ablation_profiles.dir/bench_ablation_profiles.cc.o.d"
  "bench_ablation_profiles"
  "bench_ablation_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
