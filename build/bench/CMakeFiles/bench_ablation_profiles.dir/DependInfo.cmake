
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_profiles.cc" "bench/CMakeFiles/bench_ablation_profiles.dir/bench_ablation_profiles.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_profiles.dir/bench_ablation_profiles.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bwsa_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bwsa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bwsa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bwsa_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/bwsa_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/bwsa_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bwsa_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/bwsa_report.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bwsa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
