# Empty dependencies file for bench_table2_working_sets.
# This may be replaced when dependencies are built.
