file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_clustering.dir/bench_ext_clustering.cc.o"
  "CMakeFiles/bench_ext_clustering.dir/bench_ext_clustering.cc.o.d"
  "bench_ext_clustering"
  "bench_ext_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
