# Empty compiler generated dependencies file for bench_ablation_wsdef.
# This may be replaced when dependencies are built.
