file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_wsdef.dir/bench_ablation_wsdef.cc.o"
  "CMakeFiles/bench_ablation_wsdef.dir/bench_ablation_wsdef.cc.o.d"
  "bench_ablation_wsdef"
  "bench_ablation_wsdef.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_wsdef.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
