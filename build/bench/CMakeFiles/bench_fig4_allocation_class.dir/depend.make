# Empty dependencies file for bench_fig4_allocation_class.
# This may be replaced when dependencies are built.
