file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_allocation_class.dir/bench_fig4_allocation_class.cc.o"
  "CMakeFiles/bench_fig4_allocation_class.dir/bench_fig4_allocation_class.cc.o.d"
  "bench_fig4_allocation_class"
  "bench_fig4_allocation_class.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_allocation_class.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
