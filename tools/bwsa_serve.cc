/**
 * @file
 * The online profiling daemon.
 *
 * Serves the streaming ProfileSession API (serve/service.hh) to any
 * number of clients over a unix-domain socket or stdio:
 *
 *   bwsa_serve --socket=/tmp/bwsa.sock [--threads=N]
 *              [--max-session-bytes=N --store-dir=DIR]
 *              [--max-window=N] [--quiet|--verbose]
 *              [--phase-threshold=X --phase-hysteresis=X
 *               --phase-min-windows=N]
 *   bwsa_serve --stdio [...]
 *
 * Each connection is one tenant; its sessions are isolated from every
 * other client's and reclaimed when the connection drops.  With
 * --max-session-bytes, sessions that outgrow the bound spill graph
 * epochs into the artifact cache at --store-dir (--store-cap-mb caps
 * its LRU footprint).  Sessions that opt into phase detection (a
 * nonzero phase interval in their Begin frame) get live PhaseEvent
 * frames pushed at every detected boundary; the --phase-* flags tune
 * the daemon-wide detector.  The daemon stops when a client sends a
 * Shutdown frame (or, under --stdio, at EOF).
 */

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "serve/server.hh"
#include "serve/service.hh"
#include "store/artifact_cache.hh"
#include "util/cli.hh"
#include "util/logging.hh"

namespace
{

using namespace bwsa;

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: bwsa_serve (--socket=PATH | --stdio)\n"
           "                  [--threads=N] [--max-window=N]\n"
           "                  [--max-session-bytes=N --store-dir=DIR"
           " [--store-cap-mb=N]]\n"
           "                  [--phase-threshold=X"
           " --phase-hysteresis=X --phase-min-windows=N]\n"
           "                  [--quiet | --verbose]\n";
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions options = CliOptions::parse(
        argc, argv,
        {"socket", "stdio", "threads", "max-window",
         "max-session-bytes", "store-dir", "store-cap-mb",
         "phase-threshold", "phase-hysteresis", "phase-min-windows",
         "quiet", "verbose", "help"});
    if (options.has("help"))
        usage();
    std::vector<std::string> unknown =
        CliOptions::unknownFlags(argc, argv);
    if (!unknown.empty())
        bwsa_fatal("unknown flag ", unknown.front(),
                   " (see --help)");
    applyLogLevelOptions(options);

    const bool stdio = options.getBool("stdio", false);
    const std::string socket_path =
        options.getRequiredString("socket", "");
    if (stdio == !socket_path.empty())
        usage();

    serve::ServiceConfig service_config;
    service_config.max_session_bytes =
        options.getUint("max-session-bytes", 0);
    std::uint64_t max_window = options.getUint("max-window", 0);
    if (max_window != 0)
        service_config.pipeline.interleave.max_window =
            static_cast<std::size_t>(max_window);
    service_config.phase_config.threshold =
        options.getDouble("phase-threshold", 0.4);
    service_config.phase_config.hysteresis =
        options.getDouble("phase-hysteresis", 0.2);
    service_config.phase_config.min_windows =
        options.getUint("phase-min-windows", 4);

    std::unique_ptr<store::ArtifactCache> cache;
    if (service_config.max_session_bytes != 0) {
        std::string dir = options.getRequiredString("store-dir", "");
        if (dir.empty())
            bwsa_fatal("--max-session-bytes needs --store-dir for "
                       "the spill cache");
        cache = std::make_unique<store::ArtifactCache>(
            dir, options.getUint("store-cap-mb", 256) * 1024 * 1024);
        service_config.spill_cache = cache.get();
    }

    serve::ProfileService service(std::move(service_config));

    if (stdio)
        return serve::serveStdio(service) ? 0 : 1;

    serve::ServerConfig server_config;
    server_config.socket_path = socket_path;
    server_config.threads = static_cast<unsigned>(
        options.getUint("threads", 0));
    serve::serveUnixSocket(service, server_config);
    return 0;
}
