/**
 * @file
 * Run-report inspection tool for the per-branch telemetry section.
 *
 * Commands:
 *   report_tool explain <report.json> [--top=N] [--scope=<name>]
 *       Ranked per-branch breakdown of every telemetry scope in the
 *       report (schema v3 "branches" section): the N branches with
 *       the most baseline mispredictions, with their predictability
 *       (taken rate, entropy), lifetime residency and destructive-
 *       aliasing victim counts.  Exits 1 when the report carries no
 *       telemetry (pre-v3 report, or a run without
 *       --branch-telemetry).
 *
 *   report_tool diff <a.json> <b.json> [--top=N] [--scope=<name>]
 *       Per-branch misprediction delta between two telemetry-carrying
 *       reports of the same experiment: matches branches by
 *       (scope, pc) and prints the N largest baseline-misprediction
 *       movers, plus branches present on only one side.  Reports with
 *       different schema versions (e.g. a v3 baseline against a v4
 *       run) diff fine over the sections both carry; the mismatch is
 *       a stderr warning, not an error.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "report/table.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/strutil.hh"

namespace
{

using namespace bwsa;

[[noreturn]] void
usage()
{
    std::cerr << "usage: report_tool explain <report.json> [--top=N]"
                 " [--scope=<name>]\n"
              << "       report_tool diff <a.json> <b.json> [--top=N]"
                 " [--scope=<name>]\n";
    std::exit(1);
}

obs::JsonValue
loadReport(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        bwsa_fatal("cannot open report: ", path);
    std::ostringstream text;
    text << in.rdbuf();
    obs::JsonValue doc;
    std::string error;
    if (!obs::JsonValue::parse(text.str(), doc, &error))
        bwsa_fatal("cannot parse ", path, ": ", error);
    return doc;
}

std::string
pcHex(std::uint64_t pc)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(pc));
    return buf;
}

/** One branch entry of a telemetry scope, decoded for ranking. */
struct Branch
{
    std::uint64_t pc = 0;
    std::uint64_t executed = 0;
    std::uint64_t base_miss = 0; ///< first predictor's mispredicts
    bool profiled = false;
    double taken_rate = 0.0;
    double transition_rate = 0.0;
    double entropy = 0.0;
    double residency = 0.0;
    std::uint64_t victim = 0; ///< first probed predictor's victims
};

/** One telemetry scope of a report, decoded. */
struct Scope
{
    std::string name;
    std::string base_predictor; ///< first name in totals.mispredicts
    std::uint64_t sim_branches = 0;
    std::uint64_t profiled_branches = 0;
    std::vector<Branch> branches;
};

double
numberField(const obs::JsonValue &object, const std::string &key)
{
    const obs::JsonValue *v = object.find(key);
    return v ? v->asNumber() : 0.0;
}

std::uint64_t
countField(const obs::JsonValue &object, const std::string &key)
{
    const obs::JsonValue *v = object.find(key);
    return v ? v->asCount() : 0;
}

Branch
decodeBranch(const obs::JsonValue &entry)
{
    Branch b;
    b.pc = countField(entry, "pc");
    b.executed = countField(entry, "sim_executed");
    if (const obs::JsonValue *miss = entry.find("mispredicts"))
        if (!miss->members().empty())
            b.base_miss = miss->members().front().second.asCount();
    if (const obs::JsonValue *aliasing = entry.find("aliasing"))
        if (!aliasing->members().empty())
            b.victim = countField(
                aliasing->members().front().second, "victim");
    if (const obs::JsonValue *profiled = entry.find("profiled"))
        b.profiled = profiled->asBool();
    b.taken_rate = numberField(entry, "taken_rate");
    b.transition_rate = numberField(entry, "transition_rate");
    b.entropy = numberField(entry, "entropy_bits");
    b.residency = numberField(entry, "residency");
    return b;
}

/**
 * Decode the report's telemetry scopes, name-ascending (the report
 * stores them in sweep completion order, which is not deterministic
 * across thread counts).  @p only filters to one scope when nonempty.
 */
std::vector<Scope>
decodeScopes(const obs::JsonValue &doc, const std::string &only)
{
    std::vector<Scope> scopes;
    const obs::JsonValue *section = doc.find("branches");
    if (!section || !section->isArray())
        return scopes;
    for (std::size_t i = 0; i < section->size(); ++i) {
        const obs::JsonValue &entry = section->at(i);
        Scope scope;
        if (const obs::JsonValue *name = entry.find("scope"))
            scope.name = name->asString();
        if (!only.empty() && scope.name != only)
            continue;
        scope.profiled_branches =
            countField(entry, "profiled_branches");
        if (const obs::JsonValue *totals = entry.find("totals")) {
            scope.sim_branches = countField(*totals, "sim_branches");
            if (const obs::JsonValue *miss =
                    totals->find("mispredicts"))
                if (!miss->members().empty())
                    scope.base_predictor =
                        miss->members().front().first;
        }
        if (const obs::JsonValue *branches = entry.find("branches"))
            for (std::size_t j = 0; j < branches->size(); ++j)
                scope.branches.push_back(
                    decodeBranch(branches->at(j)));
        scopes.push_back(std::move(scope));
    }
    std::sort(scopes.begin(), scopes.end(),
              [](const Scope &a, const Scope &b) {
                  return a.name < b.name;
              });
    return scopes;
}

double
percent(std::uint64_t part, std::uint64_t whole)
{
    return whole ? 100.0 * static_cast<double>(part) /
                       static_cast<double>(whole)
                 : 0.0;
}

int
runExplain(const CliOptions &options, const std::string &path)
{
    obs::JsonValue doc = loadReport(path);
    std::size_t top = options.getUint("top", 16);
    std::vector<Scope> scopes =
        decodeScopes(doc, options.getRequiredString("scope", ""));
    if (scopes.empty()) {
        std::cerr << "report has no per-branch telemetry (run with "
                     "--branch-telemetry on a schema v3 build)\n";
        return 1;
    }

    for (const Scope &scope : scopes) {
        std::vector<Branch> ranked = scope.branches;
        std::sort(ranked.begin(), ranked.end(),
                  [](const Branch &a, const Branch &b) {
                      if (a.base_miss != b.base_miss)
                          return a.base_miss > b.base_miss;
                      return a.pc < b.pc;
                  });
        if (ranked.size() > top)
            ranked.resize(top);

        std::cout << "scope " << scope.name << ": "
                  << withCommas(scope.branches.size())
                  << " static branches ("
                  << withCommas(scope.profiled_branches)
                  << " profiled), "
                  << withCommas(scope.sim_branches)
                  << " dynamic, ranked by " << scope.base_predictor
                  << " mispredictions\n";

        TextTable table({"branch", "executed", "mispredicts",
                         "miss %", "taken %", "entropy", "residency",
                         "victim"});
        for (const Branch &b : ranked)
            table.addRow(
                {pcHex(b.pc), withCommas(b.executed),
                 withCommas(b.base_miss),
                 fixedString(percent(b.base_miss, b.executed), 3),
                 b.profiled ? fixedString(100.0 * b.taken_rate, 1)
                            : "-",
                 b.profiled ? fixedString(b.entropy, 3) : "-",
                 b.profiled ? fixedString(b.residency, 3) : "-",
                 withCommas(b.victim)});
        std::cout << table.render() << "\n";
    }
    return 0;
}

int
runDiff(const CliOptions &options, const std::string &path_a,
        const std::string &path_b)
{
    obs::JsonValue doc_a = loadReport(path_a);
    obs::JsonValue doc_b = loadReport(path_b);

    // Reports from different tool generations still share the
    // sections this diff reads; warn instead of refusing, so a v3
    // baseline stays comparable against a v4 run.
    const obs::JsonValue *schema_a = doc_a.find("schema");
    const obs::JsonValue *schema_b = doc_b.find("schema");
    const std::string name_a =
        schema_a ? schema_a->asString() : "(no schema field)";
    const std::string name_b =
        schema_b ? schema_b->asString() : "(no schema field)";
    if (name_a != name_b)
        std::cerr << "warning: schema mismatch: " << path_a << " is "
                  << name_a << ", " << path_b << " is " << name_b
                  << "; diffing the sections both share\n";

    std::size_t top = options.getUint("top", 16);
    std::string only = options.getRequiredString("scope", "");
    std::vector<Scope> scopes_a = decodeScopes(doc_a, only);
    std::vector<Scope> scopes_b = decodeScopes(doc_b, only);
    if (scopes_a.empty() || scopes_b.empty()) {
        std::cerr << "both reports need per-branch telemetry (run "
                     "with --branch-telemetry on schema v3 builds)\n";
        return 1;
    }

    for (const Scope &a : scopes_a) {
        const Scope *b = nullptr;
        for (const Scope &candidate : scopes_b)
            if (candidate.name == a.name)
                b = &candidate;
        if (!b) {
            std::cout << "scope " << a.name << ": only in " << path_a
                      << "\n";
            continue;
        }

        struct Mover
        {
            std::uint64_t pc;
            std::int64_t delta; ///< b mispredicts - a mispredicts
            std::uint64_t miss_a, miss_b;
            std::uint64_t exec_a, exec_b;
        };
        std::vector<Mover> movers;
        std::size_t only_a = 0, only_b = 0;
        std::uint64_t total_a = 0, total_b = 0;

        std::vector<const Branch *> sorted_b;
        for (const Branch &branch : b->branches)
            sorted_b.push_back(&branch);
        auto find_b = [&](std::uint64_t pc) -> const Branch * {
            for (const Branch *candidate : sorted_b)
                if (candidate->pc == pc)
                    return candidate;
            return nullptr;
        };

        for (const Branch &branch : a.branches) {
            total_a += branch.base_miss;
            const Branch *other = find_b(branch.pc);
            if (!other) {
                ++only_a;
                continue;
            }
            movers.push_back(
                {branch.pc,
                 static_cast<std::int64_t>(other->base_miss) -
                     static_cast<std::int64_t>(branch.base_miss),
                 branch.base_miss, other->base_miss, branch.executed,
                 other->executed});
        }
        for (const Branch &branch : b->branches) {
            total_b += branch.base_miss;
            bool found = false;
            for (const Branch &mine : a.branches)
                if (mine.pc == branch.pc)
                    found = true;
            if (!found)
                ++only_b;
        }

        std::sort(movers.begin(), movers.end(),
                  [](const Mover &x, const Mover &y) {
                      std::int64_t ax = std::abs(x.delta);
                      std::int64_t ay = std::abs(y.delta);
                      if (ax != ay)
                          return ax > ay;
                      return x.pc < y.pc;
                  });
        if (movers.size() > top)
            movers.resize(top);

        std::cout << "scope " << a.name << " ("
                  << a.base_predictor << "): "
                  << withCommas(total_a) << " -> "
                  << withCommas(total_b) << " mispredictions ("
                  << (total_b >= total_a ? "+" : "-")
                  << withCommas(total_b >= total_a
                                    ? total_b - total_a
                                    : total_a - total_b)
                  << "), " << only_a << " branches only in a, "
                  << only_b << " only in b\n";

        TextTable table({"branch", "miss a", "miss b", "delta",
                         "executed a", "executed b"});
        for (const Mover &m : movers) {
            std::string delta =
                (m.delta >= 0 ? "+" : "-") +
                withCommas(static_cast<std::uint64_t>(
                    std::abs(m.delta)));
            table.addRow({pcHex(m.pc), withCommas(m.miss_a),
                          withCommas(m.miss_b), delta,
                          withCommas(m.exec_a),
                          withCommas(m.exec_b)});
        }
        std::cout << table.render() << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions options = CliOptions::parse(
        argc, argv, {"top", "scope", "quiet", "verbose"});
    applyLogLevelOptions(options);
    for (const std::string &flag :
         CliOptions::unknownFlags(argc, argv))
        bwsa_fatal("unknown option ", flag);

    if (argc < 2)
        usage();
    std::string command = argv[1];
    if (command == "explain" && argc >= 3)
        return runExplain(options, argv[2]);
    if (command == "diff" && argc >= 4)
        return runDiff(options, argv[2], argv[3]);
    std::cerr << "unknown or incomplete command: " << command << "\n";
    usage();
}
