#!/usr/bin/env python3
"""Append a run report's headline metrics to a trajectory file.

Usage: bench_trajectory.py <report.json> --out=BENCH_4.json
           [--label=<id>]

Distills one bench run report into a small headline record and
appends it to a JSON trajectory file (a list of records, one per
run), so successive CI runs accumulate a perf/accuracy history that
is cheap to diff and plot.

The headline record carries:
  * bench name, schema, wall_seconds, the config echo;
  * per result table: the "average" row when present (the paper's
    figures quote the averages), otherwise the first row; for the
    graph allocation-payoff table, the hardest populated
    predictability bin of the first benchmark (its "payoff %" is the
    does-allocation-pay-off-on-hard-branches headline);
  * per interference entry: the destructive count and percentage;
  * totals: number of timeseries exported and their point count;
  * per telemetry scope (schema v3 "branches"): the static/profiled
    branch counts and the per-branch allocation headline -- how many
    destructive-aliasing victim branches the baseline had, and how
    many of them allocation eliminated outright (victims that went
    to zero under the allocated predictor);
  * per execution-phase scope (schema v4 "execution_phases"): the
    phases-detected headline -- phase count, window count, mean
    phase-working-set size and the worst (most destructive, baseline
    lane) phase's share of the whole trace's destructive events.

Scheduling tables ("sweep cells:", "profile shards:") are skipped.
Only the standard library is used.
"""

import datetime
import json
import os
import sys

SKIPPED_TABLE_PREFIXES = ("sweep cells:", "profile shards:")

GRAPH_PAYOFF_TITLE = "graph allocation payoff vs. predictability"


def graph_payoff_headline(table):
    """The headline of the graph allocation-payoff table: the hardest
    *populated* predictability bin of the first benchmark -- the row
    that answers "does allocation still pay off where branches are
    inherently hard?".  ("all" rows and empty bins are skipped.)"""
    columns = table.get("columns", [])
    rows = table.get("rows", [])
    if not rows or "executed" not in columns:
        return None
    executed_col = columns.index("executed")
    first_benchmark = rows[0][0]
    headline = None
    for row in rows:
        if row[0] != first_benchmark or row[1] == "all":
            continue
        if int(row[executed_col].replace(",", "")) > 0:
            headline = row
    if headline is None:
        return None
    return dict(zip(columns, headline))


def table_headline(table):
    rows = table.get("rows", [])
    if not rows:
        return None
    headline = rows[0]
    for row in rows:
        if row and row[0] == "average":
            headline = row
            break
    return dict(zip(table.get("columns", []), headline))


def branches_headline(entry):
    """The per-branch allocation headline of one telemetry scope.

    The scope's totals carry the probed predictors in report order:
    baseline first, allocated second.  A "victim branch" suffered
    destructive aliasing under the baseline; it counts as eliminated
    when the allocated predictor shows zero victim events for it.
    """
    destructive = entry.get("totals", {}).get("destructive", {})
    probed = list(destructive)
    base = probed[0] if probed else None
    alloc = probed[1] if len(probed) > 1 else None

    victim_branches = 0
    victims_eliminated = 0
    for branch in entry.get("branches", []):
        aliasing = branch.get("aliasing", {})
        if aliasing.get(base, {}).get("victim", 0) == 0:
            continue
        victim_branches += 1
        if aliasing.get(alloc, {}).get("victim", 0) == 0:
            victims_eliminated += 1

    return {
        "scope": entry.get("scope"),
        "static_branches": len(entry.get("branches", [])),
        "profiled_branches": entry.get("profiled_branches"),
        "victim_branches": victim_branches,
        "victims_eliminated": victims_eliminated,
    }


def phases_headline(entry):
    """The phases-detected headline of one execution-phase scope.

    The interesting number for the paper's argument is concentration:
    how much of the trace's destructive aliasing the single worst
    phase accounts for (under the baseline, i.e. first probed lane).
    A whole-trace aggregate hides exactly this.
    """
    totals = entry.get("totals", {})
    phases = entry.get("phases", [])
    destructive = totals.get("destructive", {})
    base = next(iter(destructive), None)

    worst_share = 0.0
    whole = destructive.get(base, 0)
    if base is not None and whole:
        worst = max(phase.get("lanes", {}).get(base, {})
                    .get("destructive", 0) for phase in phases)
        worst_share = worst / whole

    working_sets = [phase.get("working_set", 0) for phase in phases]
    return {
        "scope": entry.get("scope"),
        "phases_detected": len(phases),
        "windows": totals.get("windows"),
        "mean_phase_working_set":
            (sum(working_sets) / len(working_sets))
            if working_sets else 0.0,
        "worst_phase_destructive_share": worst_share,
    }


def build_record(report, label):
    record = {
        "label": label,
        "recorded_utc": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "bench": report.get("bench"),
        "schema": report.get("schema"),
        "wall_seconds": report.get("wall_seconds"),
        "config": report.get("config", {}),
        "tables": {},
    }
    for table in report.get("tables", []):
        title = table.get("title", "")
        if title.startswith(SKIPPED_TABLE_PREFIXES):
            continue
        if title == GRAPH_PAYOFF_TITLE:
            headline = graph_payoff_headline(table)
        else:
            headline = table_headline(table)
        if headline is not None:
            record["tables"][title] = headline

    interference = report.get("interference", [])
    if interference:
        record["interference"] = [
            {
                "scope": entry.get("scope"),
                "predictor": entry.get("predictor"),
                "destructive": entry.get("destructive"),
                "destructive_percent": entry.get("destructive_percent"),
            }
            for entry in interference
        ]

    branches = report.get("branches", [])
    if branches:
        record["branches"] = [branches_headline(entry)
                              for entry in branches]

    execution_phases = report.get("execution_phases", [])
    if execution_phases:
        record["execution_phases"] = [phases_headline(entry)
                                      for entry in execution_phases]

    timeseries = report.get("timeseries", [])
    if timeseries:
        record["timeseries"] = {
            "series": len(timeseries),
            "points": sum(len(s.get("points", []))
                          for s in timeseries),
        }
    return record


def main(argv):
    report_path = None
    out_path = None
    label = ""
    for arg in argv[1:]:
        if arg.startswith("--out="):
            out_path = arg[len("--out="):]
        elif arg.startswith("--label="):
            label = arg[len("--label="):]
        elif arg in ("-h", "--help"):
            print(__doc__.strip())
            return 0
        elif report_path is None:
            report_path = arg
        else:
            print(f"unexpected argument {arg!r}", file=sys.stderr)
            return 2
    if report_path is None or out_path is None:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    with open(report_path, encoding="utf-8") as handle:
        report = json.load(handle)

    trajectory = []
    if os.path.exists(out_path):
        with open(out_path, encoding="utf-8") as handle:
            trajectory = json.load(handle)
        if not isinstance(trajectory, list):
            print(f"{out_path}: not a JSON list", file=sys.stderr)
            return 1

    trajectory.append(build_record(report, label))
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")
    print(f"{out_path}: {len(trajectory)} record(s), appended "
          f"{report_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
