#!/usr/bin/env python3
"""Compare a BWSA run report against a golden report and gate on drift.

Usage: compare_reports.py <golden.json> <candidate.json>
           [--tolerance=<rel>] [--tolerance=<pattern>=<rel>] ...

Compares the *result* content of two run reports -- the benchmark
tables and the interference attribution entries -- and exits non-zero
when the candidate regressed, so CI can pin the paper numbers against
a committed golden report.

What is compared:
  * every golden result table must exist in the candidate with the
    same columns and the same row labels, and every numeric cell must
    match within tolerance (non-numeric cells must match exactly);
  * every golden interference entry (keyed scope/predictor) must exist
    in the candidate, with its classification counters within
    tolerance;
  * every golden per-branch telemetry scope (schema v3 "branches",
    keyed by scope then branch pc) must exist in the candidate.
    Event *counts* (executions, mispredictions, transitions, victim/
    aggressor attribution, timestamps) must match *exactly* -- they
    are deterministic by the shard-merge algebra, whatever the thread
    or shard count -- while derived *rates* (taken_rate,
    transition_rate, entropy_bits, residency) go through the normal
    tolerance machinery under the name
    "branches/<scope>/<pc>/<field>";
  * every golden execution-phase scope (schema v4 "execution_phases",
    keyed by scope then phase index) must exist in the candidate with
    the same phase count.  Window/event counts and per-lane
    attribution match exactly (the phase timeline is deterministic by
    the accumulator merge algebra); boundary similarities and the
    similarity/transition matrices go through the tolerance machinery
    under "execution_phases/<scope>/..." names.

What is deliberately skipped (nondeterministic between runs):
  * wall-clock anything: wall_seconds, started_unix_ms, phase
    timings, metric series (they carry timer histograms);
  * scheduling tables: titles starting with "sweep cells:" or
    "profile shards:" record per-worker wall times;
  * the timeseries section: window contents are deterministic but
    huge, and the tables already pin the aggregates they feed.

Tolerances are *relative* (0.02 = 2%).  The bare --tolerance=<rel>
form sets the default (default 0: byte-determinism is the repo's
contract); --tolerance=<pattern>=<rel> applies to numeric cells whose
"table title/column" (or interference "scope/predictor/field") name
contains <pattern>.  The first matching pattern wins; patterns are
checked in the order given.

Only the standard library is used.
"""

import json
import sys

SKIPPED_TABLE_PREFIXES = ("sweep cells:", "profile shards:")

INTERFERENCE_FIELDS = ("predictions", "agree", "neutral",
                       "constructive", "destructive",
                       "destructive_percent", "shadowed_branches")

# Per-branch event counts: deterministic, compared exactly.
BRANCH_COUNT_FIELDS = ("sim_executed", "executed", "taken",
                       "transitions", "birth", "death")

# Per-branch derived rates: compared through the tolerance machinery.
BRANCH_RATE_FIELDS = ("taken_rate", "transition_rate", "entropy_bits",
                      "residency")

# Per-phase counts: deterministic, compared exactly.
PHASE_COUNT_FIELDS = ("start_ts", "end_ts", "first_window",
                      "window_count", "working_set", "born", "died",
                      "executed")


def parse_number(text):
    """The numeric value of a table cell, or None.

    Table cells carry fixed-point renderings, sometimes with
    thousands separators ("1,234,567").
    """
    if isinstance(text, (int, float)):
        return float(text)
    try:
        return float(str(text).replace(",", ""))
    except ValueError:
        return None


class Comparator:
    def __init__(self, default_tolerance, patterns):
        self.default_tolerance = default_tolerance
        self.patterns = patterns  # [(substring, rel_tolerance)]
        self.failures = []

    def tolerance_for(self, name):
        for pattern, tolerance in self.patterns:
            if pattern in name:
                return tolerance
        return self.default_tolerance

    def fail(self, message):
        self.failures.append(message)

    def compare_value(self, name, golden, candidate):
        golden_num = parse_number(golden)
        candidate_num = parse_number(candidate)
        if golden_num is None or candidate_num is None:
            if str(golden) != str(candidate):
                self.fail(f"{name}: {golden!r} != {candidate!r}")
            return
        tolerance = self.tolerance_for(name)
        bound = abs(golden_num) * tolerance
        if abs(candidate_num - golden_num) > bound:
            self.fail(f"{name}: golden {golden_num} vs candidate "
                      f"{candidate_num} (tolerance {tolerance:.3%})")

    def compare_tables(self, golden, candidate):
        candidate_by_title = {t["title"]: t
                              for t in candidate.get("tables", [])}
        for table in golden.get("tables", []):
            title = table["title"]
            if title.startswith(SKIPPED_TABLE_PREFIXES):
                continue
            other = candidate_by_title.get(title)
            if other is None:
                self.fail(f"table {title!r}: missing from candidate")
                continue
            if table["columns"] != other["columns"]:
                self.fail(f"table {title!r}: columns changed "
                          f"{table['columns']} -> {other['columns']}")
                continue
            golden_rows = {row[0]: row for row in table["rows"]}
            candidate_rows = {row[0]: row for row in other["rows"]}
            if set(golden_rows) != set(candidate_rows):
                self.fail(f"table {title!r}: row labels changed "
                          f"{sorted(golden_rows)} -> "
                          f"{sorted(candidate_rows)}")
                continue
            for label, row in golden_rows.items():
                for column, golden_cell, candidate_cell in zip(
                        table["columns"][1:], row[1:],
                        candidate_rows[label][1:]):
                    self.compare_value(
                        f"{title}/{label}/{column}",
                        golden_cell, candidate_cell)

    def compare_interference(self, golden, candidate):
        candidate_by_key = {
            (e["scope"], e["predictor"]): e
            for e in candidate.get("interference", [])}
        for entry in golden.get("interference", []):
            key = (entry["scope"], entry["predictor"])
            other = candidate_by_key.get(key)
            if other is None:
                self.fail(f"interference {key[0]}/{key[1]}: missing "
                          "from candidate")
                continue
            for field in INTERFERENCE_FIELDS:
                if field not in entry:
                    continue
                self.compare_value(
                    f"{key[0]}/{key[1]}/{field}",
                    entry[field], other.get(field, "absent"))

    def compare_exact(self, name, golden, candidate):
        if golden != candidate:
            self.fail(f"{name}: golden {golden!r} != candidate "
                      f"{candidate!r} (counts must match exactly)")

    def compare_branch(self, name, golden, candidate):
        for field in BRANCH_COUNT_FIELDS:
            if field in golden:
                self.compare_exact(f"{name}/{field}", golden[field],
                                   candidate.get(field, "absent"))
        self.compare_exact(f"{name}/profiled",
                           golden.get("profiled"),
                           candidate.get("profiled"))
        self.compare_exact(f"{name}/mispredicts",
                           golden.get("mispredicts"),
                           candidate.get("mispredicts"))
        self.compare_exact(f"{name}/aliasing",
                           golden.get("aliasing"),
                           candidate.get("aliasing"))
        for field in BRANCH_RATE_FIELDS:
            if field in golden:
                self.compare_value(f"{name}/{field}", golden[field],
                                   candidate.get(field, "absent"))

    def compare_branches(self, golden, candidate):
        candidate_by_scope = {e["scope"]: e
                              for e in candidate.get("branches", [])}
        for entry in golden.get("branches", []):
            scope = entry["scope"]
            other = candidate_by_scope.get(scope)
            if other is None:
                self.fail(f"branches {scope}: missing from candidate")
                continue
            name = f"branches/{scope}"
            self.compare_exact(f"{name}/totals",
                               entry.get("totals"),
                               other.get("totals"))
            golden_pcs = {b["pc"]: b for b in entry["branches"]}
            candidate_pcs = {b["pc"]: b for b in other["branches"]}
            if set(golden_pcs) != set(candidate_pcs):
                gone = sorted(set(golden_pcs) - set(candidate_pcs))
                new = sorted(set(candidate_pcs) - set(golden_pcs))
                self.fail(f"branches {scope}: branch set changed "
                          f"(-{[hex(p) for p in gone]} "
                          f"+{[hex(p) for p in new]})")
                continue
            for pc, branch in golden_pcs.items():
                self.compare_branch(f"{name}/{pc:#x}", branch,
                                    candidate_pcs[pc])

    def compare_matrix(self, name, golden, candidate):
        if len(golden) != len(candidate):
            self.fail(f"{name}: size changed {len(golden)} -> "
                      f"{len(candidate)}")
            return
        for i, (golden_row, candidate_row) in enumerate(
                zip(golden, candidate)):
            if len(golden_row) != len(candidate_row):
                self.fail(f"{name}: row {i} width changed")
                continue
            for j, (golden_cell, candidate_cell) in enumerate(
                    zip(golden_row, candidate_row)):
                self.compare_value(f"{name}[{i}][{j}]", golden_cell,
                                   candidate_cell)

    def compare_execution_phases(self, golden, candidate):
        candidate_by_scope = {
            e["scope"]: e
            for e in candidate.get("execution_phases", [])}
        for entry in golden.get("execution_phases", []):
            scope = entry["scope"]
            other = candidate_by_scope.get(scope)
            if other is None:
                self.fail(f"execution_phases {scope}: missing from "
                          "candidate")
                continue
            name = f"execution_phases/{scope}"
            self.compare_exact(f"{name}/interval",
                               entry.get("interval"),
                               other.get("interval"))
            self.compare_exact(f"{name}/config", entry.get("config"),
                               other.get("config"))
            self.compare_exact(f"{name}/totals", entry.get("totals"),
                               other.get("totals"))

            golden_phases = entry.get("phases", [])
            candidate_phases = other.get("phases", [])
            if len(golden_phases) != len(candidate_phases):
                self.fail(f"{name}: phase count changed "
                          f"{len(golden_phases)} -> "
                          f"{len(candidate_phases)}")
                continue
            for phase, other_phase in zip(golden_phases,
                                          candidate_phases):
                pname = f"{name}/phase{phase['index']}"
                for field in PHASE_COUNT_FIELDS:
                    self.compare_exact(
                        f"{pname}/{field}", phase.get(field),
                        other_phase.get(field, "absent"))
                self.compare_value(
                    f"{pname}/boundary_similarity",
                    phase.get("boundary_similarity"),
                    other_phase.get("boundary_similarity", "absent"))
                golden_lanes = phase.get("lanes", {})
                candidate_lanes = other_phase.get("lanes", {})
                if set(golden_lanes) != set(candidate_lanes):
                    self.fail(f"{pname}: lane set changed "
                              f"{sorted(golden_lanes)} -> "
                              f"{sorted(candidate_lanes)}")
                    continue
                for lane, counts in golden_lanes.items():
                    self.compare_exact(f"{pname}/{lane}", counts,
                                       candidate_lanes[lane])

            self.compare_matrix(f"{name}/similarity_matrix",
                                entry.get("similarity_matrix", []),
                                other.get("similarity_matrix", []))
            self.compare_matrix(f"{name}/transition_matrix",
                                entry.get("transition_matrix", []),
                                other.get("transition_matrix", []))


def main(argv):
    default_tolerance = 0.0
    patterns = []
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--tolerance="):
            spec = arg[len("--tolerance="):]
            if "=" in spec:
                pattern, _, value = spec.rpartition("=")
                patterns.append((pattern, float(value)))
            else:
                default_tolerance = float(spec)
        elif arg in ("-h", "--help"):
            print(__doc__.strip())
            return 0
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    golden_path, candidate_path = paths
    with open(golden_path, encoding="utf-8") as handle:
        golden = json.load(handle)
    with open(candidate_path, encoding="utf-8") as handle:
        candidate = json.load(handle)

    comparator = Comparator(default_tolerance, patterns)
    if golden.get("bench") != candidate.get("bench"):
        comparator.fail(f"bench name changed: {golden.get('bench')!r} "
                        f"-> {candidate.get('bench')!r}")
    comparator.compare_tables(golden, candidate)
    comparator.compare_interference(golden, candidate)
    comparator.compare_branches(golden, candidate)
    comparator.compare_execution_phases(golden, candidate)

    if comparator.failures:
        print(f"{candidate_path}: {len(comparator.failures)} "
              f"regression(s) vs {golden_path}", file=sys.stderr)
        for failure in comparator.failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"{candidate_path}: matches {golden_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
