#!/usr/bin/env python3
"""Validate a BWSA run report against the bwsa.run_report.v1 schema.

Usage: check_report_schema.py <report.json> [<report.json> ...]

Checks the structural invariants the bench harnesses promise (see
DESIGN.md, "Observability"): schema id, bench name, config echo,
at least 5 distinct phase timings, at least 10 metric series, at
least one result table, and sane numeric fields.  Exits non-zero
with a message on the first violation, so CI can gate on it.

Only the standard library is used.
"""

import json
import sys


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    sys.exit(1)


def expect(path, condition, message):
    if not condition:
        fail(path, message)


def check_phase(path, phase):
    expect(path, isinstance(phase, dict), "phase entry is not an object")
    for key in ("name", "count", "total_ms", "mean_ms", "min_ms",
                "max_ms", "work"):
        expect(path, key in phase, f"phase entry missing '{key}'")
    expect(path, isinstance(phase["name"], str) and phase["name"],
           "phase name must be a non-empty string")
    expect(path, phase["count"] >= 1,
           f"phase {phase['name']}: count must be >= 1")
    expect(path, phase["total_ms"] >= 0,
           f"phase {phase['name']}: negative total_ms")
    expect(path, phase["max_ms"] >= phase["min_ms"],
           f"phase {phase['name']}: max_ms < min_ms")


def check_metric(path, metric):
    expect(path, isinstance(metric, dict), "metric entry is not an object")
    for key in ("name", "kind"):
        expect(path, key in metric, f"metric entry missing '{key}'")
    kind = metric["kind"]
    expect(path, kind in ("counter", "gauge", "histogram"),
           f"metric {metric['name']}: unknown kind '{kind}'")
    if kind == "counter":
        expect(path, "value" in metric and metric["value"] >= 0,
               f"counter {metric['name']}: missing/negative value")
    elif kind == "gauge":
        expect(path, "value" in metric,
               f"gauge {metric['name']}: missing value")
    else:
        for key in ("count", "sum", "buckets"):
            expect(path, key in metric,
                   f"histogram {metric['name']}: missing '{key}'")


def check_table(path, table):
    expect(path, isinstance(table, dict), "table entry is not an object")
    for key in ("title", "columns", "rows"):
        expect(path, key in table, f"table entry missing '{key}'")
    width = len(table["columns"])
    expect(path, width >= 1, f"table {table['title']}: no columns")
    for row in table["rows"]:
        expect(path, len(row) == width,
               f"table {table['title']}: row width {len(row)} != "
               f"column count {width}")


def check_report(path):
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)

    expect(path, doc.get("schema") == "bwsa.run_report.v1",
           f"bad schema id: {doc.get('schema')!r}")
    expect(path, isinstance(doc.get("bench"), str) and doc["bench"],
           "missing bench name")
    expect(path, doc.get("started_unix_ms", 0) > 0,
           "missing started_unix_ms")
    expect(path, doc.get("wall_seconds", -1) >= 0,
           "missing/negative wall_seconds")

    config = doc.get("config")
    expect(path, isinstance(config, dict) and len(config) >= 1,
           "config echo must have at least one key")

    phases = doc.get("phases")
    expect(path, isinstance(phases, list), "missing phases list")
    for phase in phases:
        check_phase(path, phase)
    names = {phase["name"] for phase in phases}
    expect(path, len(names) >= 5,
           f"expected >= 5 distinct phases, got {len(names)}: "
           f"{sorted(names)}")

    expect(path, doc.get("dropped_spans", -1) >= 0,
           "missing dropped_spans")

    metrics = doc.get("metrics")
    expect(path, isinstance(metrics, list), "missing metrics list")
    for metric in metrics:
        check_metric(path, metric)
    series = {metric["name"] for metric in metrics}
    expect(path, len(series) >= 10,
           f"expected >= 10 metric series, got {len(series)}: "
           f"{sorted(series)}")

    tables = doc.get("tables")
    expect(path, isinstance(tables, list) and len(tables) >= 1,
           "expected at least one result table")
    for table in tables:
        check_table(path, table)

    print(f"{path}: OK ({len(names)} phases, {len(series)} series, "
          f"{len(tables)} tables)")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        check_report(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
