#!/usr/bin/env python3
"""Validate a BWSA run report against the bwsa.run_report schemas.

Usage: check_report_schema.py <report.json> [<report.json> ...]

Accepts any schema version in ACCEPTED_SCHEMAS.  Checks the
structural invariants the bench harnesses promise (see DESIGN.md,
"Observability"): schema id, bench name, config echo, at least 5
distinct phase timings, at least 10 metric series, at least one
result table, and sane numeric fields.  v2 reports additionally
carry the "timeseries" and "interference" sections, whose entry
shapes are validated too.  Exits non-zero with a message on the
first violation, so CI can gate on it.

Only the standard library is used.
"""

import json
import sys

ACCEPTED_SCHEMAS = ("bwsa.run_report.v1", "bwsa.run_report.v2")


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    sys.exit(1)


def expect(path, condition, message):
    if not condition:
        fail(path, message)


def check_phase(path, phase):
    expect(path, isinstance(phase, dict), "phase entry is not an object")
    for key in ("name", "count", "total_ms", "mean_ms", "min_ms",
                "max_ms", "work"):
        expect(path, key in phase, f"phase entry missing '{key}'")
    expect(path, isinstance(phase["name"], str) and phase["name"],
           "phase name must be a non-empty string")
    expect(path, phase["count"] >= 1,
           f"phase {phase['name']}: count must be >= 1")
    expect(path, phase["total_ms"] >= 0,
           f"phase {phase['name']}: negative total_ms")
    expect(path, phase["max_ms"] >= phase["min_ms"],
           f"phase {phase['name']}: max_ms < min_ms")


def check_metric(path, metric):
    expect(path, isinstance(metric, dict), "metric entry is not an object")
    for key in ("name", "kind"):
        expect(path, key in metric, f"metric entry missing '{key}'")
    kind = metric["kind"]
    expect(path, kind in ("counter", "gauge", "histogram"),
           f"metric {metric['name']}: unknown kind '{kind}'")
    if kind == "counter":
        expect(path, "value" in metric and metric["value"] >= 0,
               f"counter {metric['name']}: missing/negative value")
    elif kind == "gauge":
        expect(path, "value" in metric,
               f"gauge {metric['name']}: missing value")
    else:
        for key in ("count", "sum", "buckets"):
            expect(path, key in metric,
                   f"histogram {metric['name']}: missing '{key}'")


def check_table(path, table):
    expect(path, isinstance(table, dict), "table entry is not an object")
    for key in ("title", "columns", "rows"):
        expect(path, key in table, f"table entry missing '{key}'")
    width = len(table["columns"])
    expect(path, width >= 1, f"table {table['title']}: no columns")
    for row in table["rows"]:
        expect(path, len(row) == width,
               f"table {table['title']}: row width {len(row)} != "
               f"column count {width}")


def check_series(path, series):
    expect(path, isinstance(series, dict),
           "timeseries entry is not an object")
    for key in ("name", "window", "downsamples", "points"):
        expect(path, key in series, f"timeseries entry missing '{key}'")
    expect(path, isinstance(series["name"], str) and series["name"],
           "timeseries name must be a non-empty string")
    expect(path, series["window"] >= 1,
           f"series {series['name']}: window must be >= 1")
    prev_start = -1
    for point in series["points"]:
        expect(path, isinstance(point, list) and len(point) == 5,
               f"series {series['name']}: point is not "
               "[start, weight, mean, min, max]")
        start, weight, _, lo, hi = point
        expect(path, start > prev_start,
               f"series {series['name']}: window starts not ascending")
        expect(path, start % series["window"] == 0,
               f"series {series['name']}: start {start} not aligned "
               f"to window {series['window']}")
        expect(path, weight >= 1,
               f"series {series['name']}: empty window exported")
        expect(path, hi >= lo,
               f"series {series['name']}: max < min")
        prev_start = start


def check_interference(path, entry):
    expect(path, isinstance(entry, dict),
           "interference entry is not an object")
    for key in ("scope", "predictor", "predictions", "agree",
                "neutral", "constructive", "destructive",
                "destructive_percent", "shadowed_branches",
                "top_entries"):
        expect(path, key in entry,
               f"interference entry missing '{key}'")
    label = f"{entry['scope']}/{entry['predictor']}"
    classified = (entry["agree"] + entry["neutral"] +
                  entry["constructive"] + entry["destructive"])
    expect(path, classified == entry["predictions"],
           f"interference {label}: classes sum to {classified}, "
           f"not predictions {entry['predictions']}")
    expect(path, 0 <= entry["destructive_percent"] <= 100,
           f"interference {label}: destructive_percent out of range")
    for conflict in entry["top_entries"]:
        for key in ("entry", "owner_switches", "destructive",
                    "branches"):
            expect(path, key in conflict,
                   f"interference {label}: top entry missing '{key}'")
        expect(path, conflict["branches"] >= 2,
               f"interference {label}: conflict entry with < 2 "
               "branches")


def check_report(path):
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)

    schema = doc.get("schema")
    expect(path, schema in ACCEPTED_SCHEMAS,
           f"bad schema id: {schema!r} (accepted: "
           f"{', '.join(ACCEPTED_SCHEMAS)})")
    expect(path, isinstance(doc.get("bench"), str) and doc["bench"],
           "missing bench name")
    expect(path, doc.get("started_unix_ms", 0) > 0,
           "missing started_unix_ms")
    expect(path, doc.get("wall_seconds", -1) >= 0,
           "missing/negative wall_seconds")

    config = doc.get("config")
    expect(path, isinstance(config, dict) and len(config) >= 1,
           "config echo must have at least one key")

    phases = doc.get("phases")
    expect(path, isinstance(phases, list), "missing phases list")
    for phase in phases:
        check_phase(path, phase)
    names = {phase["name"] for phase in phases}
    expect(path, len(names) >= 5,
           f"expected >= 5 distinct phases, got {len(names)}: "
           f"{sorted(names)}")

    expect(path, doc.get("dropped_spans", -1) >= 0,
           "missing dropped_spans")

    metrics = doc.get("metrics")
    expect(path, isinstance(metrics, list), "missing metrics list")
    for metric in metrics:
        check_metric(path, metric)
    series = {metric["name"] for metric in metrics}
    expect(path, len(series) >= 10,
           f"expected >= 10 metric series, got {len(series)}: "
           f"{sorted(series)}")

    tables = doc.get("tables")
    expect(path, isinstance(tables, list) and len(tables) >= 1,
           "expected at least one result table")
    for table in tables:
        check_table(path, table)

    extras = ""
    if schema == "bwsa.run_report.v2":
        timeseries = doc.get("timeseries")
        expect(path, isinstance(timeseries, list),
               "v2 report missing timeseries list")
        for entry in timeseries:
            check_series(path, entry)
        interference = doc.get("interference")
        expect(path, isinstance(interference, list),
               "v2 report missing interference list")
        for entry in interference:
            check_interference(path, entry)
        extras = (f", {len(timeseries)} timeseries, "
                  f"{len(interference)} interference entries")

    print(f"{path}: OK ({len(names)} phases, {len(series)} series, "
          f"{len(tables)} tables{extras})")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        check_report(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
