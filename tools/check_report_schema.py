#!/usr/bin/env python3
"""Validate a BWSA run report against the bwsa.run_report schemas.

Usage: check_report_schema.py <report.json> [<report.json> ...]

Accepts any schema version in ACCEPTED_SCHEMAS.  Checks the
structural invariants the bench harnesses promise (see DESIGN.md,
"Observability"): schema id, bench name, config echo, at least 5
distinct phase timings, at least 10 metric series, at least one
result table, and sane numeric fields.  v2 reports additionally
carry the "timeseries" and "interference" sections, whose entry
shapes are validated too.  v3 reports add the per-branch "branches"
section; its scope entries are checked structurally AND arithmetically
(per-branch execution/misprediction/victim counts must sum exactly to
the scope totals, and the totals must agree with the matching
"interference" entries), so CI catches any drift between the
per-branch producers and the aggregate counters.  v4 reports add the
"execution_phases" section (online phase detection); its per-phase
attribution is reconciled the same way: per-phase executions,
mispredictions, destructive events, births and deaths must sum
exactly to the scope totals, and the similarity/transition matrices
must be square, symmetric-with-unit-diagonal and row-stochastic
respectively.  Reports carrying the graph allocation-payoff table
(bench_graph_alloc) get its per-bin counters reconciled against the
"all" row, its derived percentage columns recomputed, and the
>= 3-populated-bins acceptance bar enforced.  Exits non-zero with a
message on the first violation, so CI can gate on it.

Only the standard library is used.
"""

import json
import sys

ACCEPTED_SCHEMAS = ("bwsa.run_report.v1", "bwsa.run_report.v2",
                    "bwsa.run_report.v3", "bwsa.run_report.v4")


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    sys.exit(1)


def expect(path, condition, message):
    if not condition:
        fail(path, message)


def check_phase(path, phase):
    expect(path, isinstance(phase, dict), "phase entry is not an object")
    for key in ("name", "count", "total_ms", "mean_ms", "min_ms",
                "max_ms", "work"):
        expect(path, key in phase, f"phase entry missing '{key}'")
    expect(path, isinstance(phase["name"], str) and phase["name"],
           "phase name must be a non-empty string")
    expect(path, phase["count"] >= 1,
           f"phase {phase['name']}: count must be >= 1")
    expect(path, phase["total_ms"] >= 0,
           f"phase {phase['name']}: negative total_ms")
    expect(path, phase["max_ms"] >= phase["min_ms"],
           f"phase {phase['name']}: max_ms < min_ms")


def check_metric(path, metric):
    expect(path, isinstance(metric, dict), "metric entry is not an object")
    for key in ("name", "kind"):
        expect(path, key in metric, f"metric entry missing '{key}'")
    kind = metric["kind"]
    expect(path, kind in ("counter", "gauge", "histogram"),
           f"metric {metric['name']}: unknown kind '{kind}'")
    if kind == "counter":
        expect(path, "value" in metric and metric["value"] >= 0,
               f"counter {metric['name']}: missing/negative value")
    elif kind == "gauge":
        expect(path, "value" in metric,
               f"gauge {metric['name']}: missing value")
    else:
        for key in ("count", "sum", "buckets"):
            expect(path, key in metric,
                   f"histogram {metric['name']}: missing '{key}'")


def check_sim_counters(path, metrics):
    """Reconcile the simulator counters (see src/sim/bpred_sim.cc):
    sim.runs counts trace replays, sim.predictor_runs counts
    (predictor, replay) pairs, so every replay must account for at
    least one predictor run, and per-prediction counters (branches,
    mispredicts) aggregate across predictor runs."""
    counters = {m["name"]: m["value"] for m in metrics
                if m.get("kind") == "counter"}
    runs = counters.get("sim.runs", 0)
    if runs == 0:
        return
    expect(path, "sim.predictor_runs" in counters,
           "report has sim.runs but no sim.predictor_runs")
    predictor_runs = counters["sim.predictor_runs"]
    expect(path, predictor_runs >= runs,
           f"sim.predictor_runs {predictor_runs} < sim.runs {runs}: "
           "every trace replay drives at least one predictor")
    branches = counters.get("sim.branches", 0)
    mispredicts = counters.get("sim.mispredicts", 0)
    expect(path, mispredicts <= branches,
           f"sim.mispredicts {mispredicts} > sim.branches {branches}")


def check_table(path, table):
    expect(path, isinstance(table, dict), "table entry is not an object")
    for key in ("title", "columns", "rows"):
        expect(path, key in table, f"table entry missing '{key}'")
    width = len(table["columns"])
    expect(path, width >= 1, f"table {table['title']}: no columns")
    for row in table["rows"]:
        expect(path, len(row) == width,
               f"table {table['title']}: row width {len(row)} != "
               f"column count {width}")


GRAPH_PAYOFF_TITLE = "graph allocation payoff vs. predictability"
GRAPH_PAYOFF_COLUMNS = [
    "benchmark", "bin", "branches", "executed", "base miss",
    "base miss %", "alloc miss", "alloc miss %", "payoff %",
    "base victims", "alloc victims", "eliminated %"]


def parse_count(cell):
    return int(cell.replace(",", ""))


def check_graph_payoff_table(path, table):
    """Reconcile the graph allocation-payoff table (bench_graph_alloc):
    per-benchmark bin rows must sum exactly to the trailing "all" row
    for every counter column, the derived percentage columns must
    agree with the counters to rendering precision, and at least one
    benchmark must populate >= 3 predictability bins."""
    title = table["title"]
    expect(path, table["columns"] == GRAPH_PAYOFF_COLUMNS,
           f"table {title}: columns {table['columns']} != "
           f"{GRAPH_PAYOFF_COLUMNS}")

    groups = {}
    order = []
    for row in table["rows"]:
        benchmark = row[0]
        if benchmark not in groups:
            groups[benchmark] = []
            order.append(benchmark)
        groups[benchmark].append(row)

    expect(path, order, f"table {title}: no rows")
    best_populated = 0
    counters = (2, 3, 4, 6, 9, 10)  # the integer count columns
    for benchmark in order:
        rows = groups[benchmark]
        expect(path, rows[-1][1] == "all",
               f"table {title}: {benchmark} does not end with the "
               "'all' row")
        bins = rows[:-1]
        expect(path, len(bins) >= 2,
               f"table {title}: {benchmark} has fewer than 2 bin rows")
        all_row = rows[-1]
        for col in counters:
            total = sum(parse_count(r[col]) for r in bins)
            expect(path, total == parse_count(all_row[col]),
                   f"table {title}: {benchmark} column "
                   f"'{GRAPH_PAYOFF_COLUMNS[col]}' bins sum to "
                   f"{total}, 'all' row says {all_row[col]}")
        populated = sum(parse_count(r[3]) > 0 for r in bins)
        best_populated = max(best_populated, populated)
        for row in rows:
            label = f"{benchmark}/{row[1]}"
            executed = parse_count(row[3])
            base_miss = parse_count(row[4])
            alloc_miss = parse_count(row[6])
            base_victims = parse_count(row[9])
            alloc_victims = parse_count(row[10])
            expect(path, base_miss <= executed,
                   f"table {title}: {label} base miss > executed")
            expect(path, alloc_miss <= executed,
                   f"table {title}: {label} alloc miss > executed")

            def reconcile(name, rendered, num, den, tolerance):
                want = 100.0 * num / den if den else 0.0
                expect(path, abs(float(rendered) - want) <= tolerance,
                       f"table {title}: {label} {name} is {rendered}, "
                       f"counters give {want:.4f}")

            reconcile("base miss %", row[5], base_miss, executed,
                      0.002)
            reconcile("alloc miss %", row[7], alloc_miss, executed,
                      0.002)
            reconcile("payoff %", row[8], base_miss - alloc_miss,
                      base_miss, 0.02)
            reconcile("eliminated %", row[11],
                      base_victims - alloc_victims, base_victims, 0.11)
    expect(path, best_populated >= 3,
           f"table {title}: no benchmark populates >= 3 "
           f"predictability bins (best: {best_populated})")


def check_series(path, series):
    expect(path, isinstance(series, dict),
           "timeseries entry is not an object")
    for key in ("name", "window", "downsamples", "points"):
        expect(path, key in series, f"timeseries entry missing '{key}'")
    expect(path, isinstance(series["name"], str) and series["name"],
           "timeseries name must be a non-empty string")
    expect(path, series["window"] >= 1,
           f"series {series['name']}: window must be >= 1")
    prev_start = -1
    for point in series["points"]:
        expect(path, isinstance(point, list) and len(point) == 5,
               f"series {series['name']}: point is not "
               "[start, weight, mean, min, max]")
        start, weight, _, lo, hi = point
        expect(path, start > prev_start,
               f"series {series['name']}: window starts not ascending")
        expect(path, start % series["window"] == 0,
               f"series {series['name']}: start {start} not aligned "
               f"to window {series['window']}")
        expect(path, weight >= 1,
               f"series {series['name']}: empty window exported")
        expect(path, hi >= lo,
               f"series {series['name']}: max < min")
        prev_start = start


def check_interference(path, entry):
    expect(path, isinstance(entry, dict),
           "interference entry is not an object")
    for key in ("scope", "predictor", "predictions", "agree",
                "neutral", "constructive", "destructive",
                "destructive_percent", "shadowed_branches",
                "top_entries"):
        expect(path, key in entry,
               f"interference entry missing '{key}'")
    label = f"{entry['scope']}/{entry['predictor']}"
    classified = (entry["agree"] + entry["neutral"] +
                  entry["constructive"] + entry["destructive"])
    expect(path, classified == entry["predictions"],
           f"interference {label}: classes sum to {classified}, "
           f"not predictions {entry['predictions']}")
    expect(path, 0 <= entry["destructive_percent"] <= 100,
           f"interference {label}: destructive_percent out of range")
    for conflict in entry["top_entries"]:
        for key in ("entry", "owner_switches", "destructive",
                    "branches"):
            expect(path, key in conflict,
                   f"interference {label}: top entry missing '{key}'")
        expect(path, conflict["branches"] >= 2,
               f"interference {label}: conflict entry with < 2 "
               "branches")
    # v3 probes also rank per-branch victims; older reports omit it.
    for victim in entry.get("top_victims", ()):
        for key in ("pc", "victim", "aggressor"):
            expect(path, key in victim,
                   f"interference {label}: top victim missing '{key}'")
        expect(path, victim["victim"] <= entry["destructive"],
               f"interference {label}: victim count exceeds the "
               "destructive total")


def check_branch_entry(path, label, branch, predictors):
    for key in ("pc", "sim_executed", "mispredicts", "profiled"):
        expect(path, key in branch,
               f"branches {label}: branch entry missing '{key}'")
    pc = branch["pc"]
    expect(path, set(branch["mispredicts"]) == predictors,
           f"branches {label}: branch {pc:#x} predictor set "
           f"{sorted(branch['mispredicts'])} != scope totals "
           f"{sorted(predictors)}")
    for name, count in branch["mispredicts"].items():
        expect(path, 0 <= count <= branch["sim_executed"],
               f"branches {label}: branch {pc:#x} {name} mispredicts "
               f"{count} exceed executions {branch['sim_executed']}")
    for name, aliasing in branch.get("aliasing", {}).items():
        for key in ("victim", "aggressor"):
            expect(path, key in aliasing,
                   f"branches {label}: branch {pc:#x} aliasing for "
                   f"{name} missing '{key}'")
    if not branch["profiled"]:
        return
    for key in ("executed", "taken", "transitions", "taken_rate",
                "transition_rate", "entropy_bits", "birth", "death",
                "residency"):
        expect(path, key in branch,
               f"branches {label}: profiled branch {pc:#x} missing "
               f"'{key}'")
    expect(path, branch["taken"] <= branch["executed"],
           f"branches {label}: branch {pc:#x} taken > executed")
    expect(path, branch["transitions"] < max(branch["executed"], 1),
           f"branches {label}: branch {pc:#x} transitions must be < "
           "executions")
    for key in ("taken_rate", "transition_rate", "residency"):
        expect(path, 0.0 <= branch[key] <= 1.0,
               f"branches {label}: branch {pc:#x} {key} out of [0,1]")
    expect(path, branch["entropy_bits"] >= 0.0,
           f"branches {label}: branch {pc:#x} negative entropy")
    expect(path, branch["birth"] <= branch["death"],
           f"branches {label}: branch {pc:#x} birth after death")


def check_branches_scope(path, entry, interference):
    expect(path, isinstance(entry, dict),
           "branches entry is not an object")
    for key in ("scope", "entropy_order", "profiled_branches",
                "totals", "branches"):
        expect(path, key in entry, f"branches entry missing '{key}'")
    label = entry["scope"]
    totals = entry["totals"]
    for key in ("sim_branches", "first_timestamp", "last_timestamp",
                "mispredicts", "destructive"):
        expect(path, key in totals,
               f"branches {label}: totals missing '{key}'")
    expect(path, entry["entropy_order"] >= 1,
           f"branches {label}: entropy_order must be >= 1")
    predictors = set(totals["mispredicts"])
    expect(path, len(predictors) >= 1,
           f"branches {label}: no predictors in totals")

    branches = entry["branches"]
    profiled = 0
    prev_pc = -1
    sum_executed = 0
    sum_miss = {name: 0 for name in predictors}
    sum_victim = {name: 0 for name in totals["destructive"]}
    sum_aggressor = {name: 0 for name in totals["destructive"]}
    for branch in branches:
        check_branch_entry(path, label, branch, predictors)
        expect(path, branch["pc"] > prev_pc,
               f"branches {label}: pcs not strictly ascending at "
               f"{branch['pc']:#x}")
        prev_pc = branch["pc"]
        profiled += bool(branch["profiled"])
        sum_executed += branch["sim_executed"]
        for name, count in branch["mispredicts"].items():
            sum_miss[name] += count
        for name, aliasing in branch.get("aliasing", {}).items():
            expect(path, name in sum_victim,
                   f"branches {label}: aliasing predictor '{name}' "
                   "not in totals.destructive")
            sum_victim[name] += aliasing["victim"]
            sum_aggressor[name] += aliasing["aggressor"]

    # Reconciliation: the per-branch maps must sum exactly to the
    # aggregates -- no event may be lost or double-counted.
    expect(path, profiled == entry["profiled_branches"],
           f"branches {label}: {profiled} profiled branches, header "
           f"says {entry['profiled_branches']}")
    expect(path, sum_executed == totals["sim_branches"],
           f"branches {label}: per-branch executions sum to "
           f"{sum_executed}, totals say {totals['sim_branches']}")
    for name in predictors:
        expect(path, sum_miss[name] == totals["mispredicts"][name],
               f"branches {label}: {name} per-branch mispredictions "
               f"sum to {sum_miss[name]}, totals say "
               f"{totals['mispredicts'][name]}")
    for name, destructive in totals["destructive"].items():
        expect(path, sum_victim[name] == destructive,
               f"branches {label}: {name} victim counts sum to "
               f"{sum_victim[name]}, destructive total is "
               f"{destructive}")
        expect(path, sum_aggressor[name] == destructive,
               f"branches {label}: {name} aggressor counts sum to "
               f"{sum_aggressor[name]}, destructive total is "
               f"{destructive}")

    # Cross-check against the probe's own section when present.
    for probe in interference:
        if (probe["scope"] == label and
                probe["predictor"] in totals["destructive"]):
            expect(path,
                   totals["destructive"][probe["predictor"]] ==
                   probe["destructive"],
               f"branches {label}: destructive total for "
               f"{probe['predictor']} disagrees with the "
               "interference section")


def check_phase_entry(path, label, index, phase, interval, predictors,
                      probed):
    for key in ("index", "start_ts", "end_ts", "first_window",
                "window_count", "boundary_similarity", "working_set",
                "born", "died", "executed", "lanes"):
        expect(path, key in phase,
               f"execution_phases {label}: phase missing '{key}'")
    expect(path, phase["index"] == index,
           f"execution_phases {label}: phase index {phase['index']} "
           f"at position {index}")
    expect(path, phase["start_ts"] % interval == 0,
           f"execution_phases {label}: phase {index} start_ts not "
           f"aligned to interval {interval}")
    expect(path, phase["end_ts"] > phase["start_ts"],
           f"execution_phases {label}: phase {index} end_ts <= "
           "start_ts")
    expect(path, phase["window_count"] >= 1,
           f"execution_phases {label}: phase {index} has no windows")
    expect(path, 0.0 <= phase["boundary_similarity"] <= 1.0,
           f"execution_phases {label}: phase {index} "
           "boundary_similarity out of [0,1]")
    expect(path, phase["born"] <= phase["working_set"],
           f"execution_phases {label}: phase {index} born exceeds "
           "working set")
    expect(path, phase["died"] <= phase["working_set"],
           f"execution_phases {label}: phase {index} died exceeds "
           "working set")
    expect(path, set(phase["lanes"]) == predictors,
           f"execution_phases {label}: phase {index} lane set "
           f"{sorted(phase['lanes'])} != totals "
           f"{sorted(predictors)}")
    for name, lane in phase["lanes"].items():
        expect(path, lane["executed"] == phase["executed"],
               f"execution_phases {label}: phase {index} lane {name} "
               f"executed {lane['executed']} != phase executions "
               f"{phase['executed']} (every lane replays every "
               "branch)")
        expect(path, lane["mispredicted"] <= lane["executed"],
               f"execution_phases {label}: phase {index} lane {name} "
               "mispredicted > executed")
        expect(path, ("destructive" in lane) == (name in probed),
               f"execution_phases {label}: phase {index} lane {name} "
               "destructive presence disagrees with "
               "totals.destructive")


def check_matrix(path, label, name, matrix, n, row_stochastic):
    expect(path, len(matrix) == n,
           f"execution_phases {label}: {name} is not {n}x{n}")
    for i, row in enumerate(matrix):
        expect(path, len(row) == n,
               f"execution_phases {label}: {name} row {i} width "
               f"{len(row)} != {n}")
        for j, value in enumerate(row):
            expect(path, 0.0 <= value <= 1.0 + 1e-9,
                   f"execution_phases {label}: {name}[{i}][{j}] out "
                   "of [0,1]")
        if row_stochastic:
            expect(path, abs(sum(row) - 1.0) < 1e-6,
                   f"execution_phases {label}: {name} row {i} sums "
                   f"to {sum(row)}, not 1")
        else:
            expect(path, abs(matrix[i][i] - 1.0) < 1e-12,
                   f"execution_phases {label}: {name} diagonal "
                   f"[{i}][{i}] is {matrix[i][i]}, not 1")
            for j in range(n):
                expect(path, abs(row[j] - matrix[j][i]) < 1e-9,
                       f"execution_phases {label}: {name} not "
                       f"symmetric at [{i}][{j}]")


def check_execution_phases(path, entry):
    expect(path, isinstance(entry, dict),
           "execution_phases entry is not an object")
    for key in ("scope", "interval", "config", "totals", "phases",
                "similarity_matrix", "transition_matrix"):
        expect(path, key in entry,
               f"execution_phases entry missing '{key}'")
    label = entry["scope"]
    expect(path, entry["interval"] >= 1,
           f"execution_phases {label}: interval must be >= 1")
    for key in ("threshold", "hysteresis", "min_windows"):
        expect(path, key in entry["config"],
               f"execution_phases {label}: config missing '{key}'")

    totals = entry["totals"]
    for key in ("executed", "phases", "windows", "distinct_pcs",
                "mispredicts", "destructive"):
        expect(path, key in totals,
               f"execution_phases {label}: totals missing '{key}'")
    predictors = set(totals["mispredicts"])
    probed = set(totals["destructive"])
    expect(path, probed <= predictors,
           f"execution_phases {label}: probed lanes not a subset of "
           "predictor lanes")

    phases = entry["phases"]
    expect(path, len(phases) == totals["phases"],
           f"execution_phases {label}: {len(phases)} phase entries, "
           f"totals say {totals['phases']}")
    expect(path, len(phases) >= 1,
           f"execution_phases {label}: no phases")

    next_window = 0
    prev_end = 0
    sums = {"executed": 0, "born": 0, "died": 0, "windows": 0}
    sum_miss = {name: 0 for name in predictors}
    sum_destructive = {name: 0 for name in probed}
    for index, phase in enumerate(phases):
        check_phase_entry(path, label, index, phase,
                          entry["interval"], predictors, probed)
        expect(path, phase["first_window"] == next_window,
               f"execution_phases {label}: phase {index} "
               f"first_window {phase['first_window']}, expected "
               f"{next_window} (phases must tile the windows)")
        next_window += phase["window_count"]
        expect(path, phase["start_ts"] >= prev_end,
               f"execution_phases {label}: phase {index} overlaps "
               "its predecessor")
        prev_end = phase["end_ts"]
        sums["executed"] += phase["executed"]
        sums["born"] += phase["born"]
        sums["died"] += phase["died"]
        sums["windows"] += phase["window_count"]
        for name, lane in phase["lanes"].items():
            sum_miss[name] += lane["mispredicted"]
            if name in probed:
                sum_destructive[name] += lane["destructive"]

    # Reconciliation: phase attribution must partition the run --
    # every execution, misprediction, destructive event, birth and
    # death lands in exactly one phase.
    expect(path, sums["executed"] == totals["executed"],
           f"execution_phases {label}: per-phase executions sum to "
           f"{sums['executed']}, totals say {totals['executed']}")
    expect(path, sums["windows"] == totals["windows"],
           f"execution_phases {label}: per-phase windows sum to "
           f"{sums['windows']}, totals say {totals['windows']}")
    for key in ("born", "died"):
        expect(path, sums[key] == totals["distinct_pcs"],
               f"execution_phases {label}: per-phase {key} sum to "
               f"{sums[key]}, distinct_pcs is "
               f"{totals['distinct_pcs']} (every pc is {key[:-1]}"
               "exactly once)")
    for name in predictors:
        expect(path, sum_miss[name] == totals["mispredicts"][name],
               f"execution_phases {label}: {name} per-phase "
               f"mispredictions sum to {sum_miss[name]}, totals say "
               f"{totals['mispredicts'][name]}")
    for name in probed:
        expect(path,
               sum_destructive[name] == totals["destructive"][name],
               f"execution_phases {label}: {name} per-phase "
               f"destructive events sum to {sum_destructive[name]}, "
               f"totals say {totals['destructive'][name]}")

    n = len(phases)
    check_matrix(path, label, "similarity_matrix",
                 entry["similarity_matrix"], n, row_stochastic=False)
    check_matrix(path, label, "transition_matrix",
                 entry["transition_matrix"], n, row_stochastic=True)


def check_report(path):
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)

    schema = doc.get("schema")
    expect(path, schema in ACCEPTED_SCHEMAS,
           f"bad schema id: {schema!r} (accepted: "
           f"{', '.join(ACCEPTED_SCHEMAS)})")
    expect(path, isinstance(doc.get("bench"), str) and doc["bench"],
           "missing bench name")
    expect(path, doc.get("started_unix_ms", 0) > 0,
           "missing started_unix_ms")
    expect(path, doc.get("wall_seconds", -1) >= 0,
           "missing/negative wall_seconds")

    config = doc.get("config")
    expect(path, isinstance(config, dict) and len(config) >= 1,
           "config echo must have at least one key")

    phases = doc.get("phases")
    expect(path, isinstance(phases, list), "missing phases list")
    for phase in phases:
        check_phase(path, phase)
    names = {phase["name"] for phase in phases}
    expect(path, len(names) >= 5,
           f"expected >= 5 distinct phases, got {len(names)}: "
           f"{sorted(names)}")

    expect(path, doc.get("dropped_spans", -1) >= 0,
           "missing dropped_spans")

    metrics = doc.get("metrics")
    expect(path, isinstance(metrics, list), "missing metrics list")
    for metric in metrics:
        check_metric(path, metric)
    series = {metric["name"] for metric in metrics}
    expect(path, len(series) >= 10,
           f"expected >= 10 metric series, got {len(series)}: "
           f"{sorted(series)}")
    check_sim_counters(path, metrics)

    tables = doc.get("tables")
    expect(path, isinstance(tables, list) and len(tables) >= 1,
           "expected at least one result table")
    for table in tables:
        check_table(path, table)
        if table["title"] == GRAPH_PAYOFF_TITLE:
            check_graph_payoff_table(path, table)

    version = int(schema.rsplit(".v", 1)[1])
    extras = ""
    if version >= 2:
        timeseries = doc.get("timeseries")
        expect(path, isinstance(timeseries, list),
               f"{schema} report missing timeseries list")
        for entry in timeseries:
            check_series(path, entry)
        interference = doc.get("interference")
        expect(path, isinstance(interference, list),
               f"{schema} report missing interference list")
        for entry in interference:
            check_interference(path, entry)
        extras = (f", {len(timeseries)} timeseries, "
                  f"{len(interference)} interference entries")
    if version >= 3:
        branches = doc.get("branches")
        expect(path, isinstance(branches, list),
               f"{schema} report missing branches list")
        for entry in branches:
            check_branches_scope(path, entry, doc["interference"])
        scopes = {entry["scope"] for entry in branches}
        expect(path, len(scopes) == len(branches),
               "duplicate telemetry scopes in branches list")
        extras += f", {len(branches)} telemetry scopes"
    if version >= 4:
        execution_phases = doc.get("execution_phases")
        expect(path, isinstance(execution_phases, list),
               f"{schema} report missing execution_phases list")
        for entry in execution_phases:
            check_execution_phases(path, entry)
        scopes = {entry["scope"] for entry in execution_phases}
        expect(path, len(scopes) == len(execution_phases),
               "duplicate scopes in execution_phases list")
        extras += (f", {len(execution_phases)} execution-phase "
                   "scopes")

    print(f"{path}: OK ({len(names)} phases, {len(series)} series, "
          f"{len(tables)} tables{extras})")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        check_report(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
