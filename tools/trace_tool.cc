/**
 * @file
 * Trace container maintenance tool.
 *
 * Commands:
 *   trace_tool convert --in=<trace> --out=<trace> [--to=v1|v2]
 *                      [--block-records=N]
 *       Re-encode a trace of either format into the requested format
 *       (default v2).  v1 -> v2 -> v1 round-trips byte-identically,
 *       which CI exploits to validate the block container.
 *
 *   trace_tool info --in=<trace>
 *       Print format version, record count and instruction range; for
 *       v2 containers also the block index and a per-block CRC +
 *       decode status line.  Exits 1 when any block fails its check,
 *       so scripts can use it as an integrity gate.
 */

#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "store/block_trace.hh"
#include "trace/trace_io.hh"
#include "util/cli.hh"
#include "util/logging.hh"

namespace
{

using namespace bwsa;

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: trace_tool convert --in=<trace> --out=<trace>\n"
        << "                  [--to=v1|v2] [--block-records=N]\n"
        << "       trace_tool info --in=<trace>\n";
    std::exit(1);
}

/** Min/max timestamp sink for v1 files (v2 reads them off the index). */
class TimestampRangeSink : public TraceSink
{
  public:
    void
    onBranch(const BranchRecord &record) override
    {
        if (_count == 0)
            _first = record.timestamp;
        _last = record.timestamp;
        ++_count;
    }

    std::uint64_t first() const { return _first; }
    std::uint64_t last() const { return _last; }
    std::uint64_t count() const { return _count; }

  private:
    std::uint64_t _first = 0;
    std::uint64_t _last = 0;
    std::uint64_t _count = 0;
};

int
runConvert(const CliOptions &options)
{
    std::string in = options.getRequiredString("in", "");
    std::string out = options.getRequiredString("out", "");
    if (in.empty() || out.empty())
        bwsa_fatal("convert needs --in and --out");
    std::string to = options.getRequiredString("to", "v2");
    std::uint64_t block_records = options.getUint(
        "block-records", store::default_block_records);

    std::unique_ptr<TraceSource> source = store::openTraceReader(in);
    std::uint64_t written = 0;
    if (to == "v2") {
        written = store::writeBlockTraceFile(out, *source,
                                             block_records);
    } else if (to == "v1") {
        written = writeTraceFile(out, *source);
    } else {
        bwsa_fatal("unknown --to format '", to, "' (want v1 or v2)");
    }
    inform("wrote ", written, " records to ", out, " (", to, ")");
    return 0;
}

int
runInfo(const CliOptions &options)
{
    std::string in = options.getRequiredString("in", "");
    if (in.empty())
        bwsa_fatal("info needs --in");

    std::uint32_t version = store::traceFileVersion(in);
    std::cout << "file: " << in << "\n";
    std::cout << "format: v" << version << "\n";

    if (version == trace_format_version) {
        TraceFileReader reader(in);
        TimestampRangeSink range;
        reader.replay(range);
        std::cout << "records: " << reader.recordCount() << "\n";
        std::cout << "instructions: [" << range.first() << ", "
                  << range.last() << "]\n";
        std::cout << "status: ok\n";
        return 0;
    }

    store::BlockTraceReader reader(in);
    const auto &blocks = reader.blocks();
    std::cout << "records: " << reader.recordCount() << "\n";
    std::cout << "blocks: " << blocks.size() << "\n";
    std::uint64_t first_ts =
        blocks.empty() ? 0 : blocks.front().first_timestamp;
    std::uint64_t last_ts =
        blocks.empty() ? 0 : blocks.back().last_timestamp;
    std::cout << "instructions: [" << first_ts << ", " << last_ts
              << "]\n";
    std::cout << "digest: " << std::hex << reader.digest() << std::dec
              << "\n";

    std::vector<store::BlockCheckResult> checks =
        reader.verifyBlocks();
    std::size_t bad = 0;
    for (const store::BlockCheckResult &check : checks) {
        const store::TraceBlockInfo &info = blocks[check.index];
        std::cout << "block " << check.index << ": records "
                  << info.record_count << " ts ["
                  << info.first_timestamp << ", "
                  << info.last_timestamp << "] crc ";
        if (check.ok) {
            std::cout << "ok\n";
        } else {
            std::cout << "BAD (" << check.message << ")\n";
            ++bad;
        }
    }
    if (bad) {
        std::cout << "status: corrupt (" << bad << " of "
                  << checks.size() << " blocks failed)\n";
        return 1;
    }
    std::cout << "status: ok\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions options = CliOptions::parse(
        argc, argv,
        {"in", "out", "to", "block-records", "quiet", "verbose"});
    applyLogLevelOptions(options);
    for (const std::string &flag : CliOptions::unknownFlags(argc, argv))
        bwsa_fatal("unknown option ", flag);

    if (argc < 2)
        usage();
    std::string command = argv[1];
    if (command == "convert")
        return runConvert(options);
    if (command == "info")
        return runInfo(options);
    std::cerr << "unknown command: " << command << "\n";
    usage();
}
